/**
 * @file
 * Status/error reporting helpers in the gem5 style.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * warn()   — something is modeled approximately; simulation continues.
 * inform() — normal operating status for the user.
 */

#ifndef ROSE_UTIL_LOGGING_HH
#define ROSE_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace rose {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Panic = 0, Fatal, Warn, Inform, Debug };

/**
 * Global log threshold; messages above this level are suppressed.
 * Defaults to Inform so Debug chatter stays quiet in benches.
 */
LogLevel logThreshold();

/** Set the global log threshold. */
void setLogThreshold(LogLevel level);

namespace detail {

/** Emit one formatted log line to stderr if level passes the threshold. */
void emitLog(LogLevel level, const std::string &msg, const char *file,
             int line);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicExit();
[[noreturn]] void fatalExit();

} // namespace detail

} // namespace rose

#define ROSE_LOG_AT(level, ...)                                              \
    ::rose::detail::emitLog(level, ::rose::detail::concat(__VA_ARGS__),      \
                            __FILE__, __LINE__)

/** Internal invariant violated: print and abort (core-dumpable). */
#define rose_panic(...)                                                      \
    do {                                                                     \
        ROSE_LOG_AT(::rose::LogLevel::Panic, __VA_ARGS__);                   \
        ::rose::detail::panicExit();                                         \
    } while (0)

/** User error: print and exit(1). */
#define rose_fatal(...)                                                      \
    do {                                                                     \
        ROSE_LOG_AT(::rose::LogLevel::Fatal, __VA_ARGS__);                   \
        ::rose::detail::fatalExit();                                         \
    } while (0)

#define rose_warn(...) ROSE_LOG_AT(::rose::LogLevel::Warn, __VA_ARGS__)
#define rose_inform(...) ROSE_LOG_AT(::rose::LogLevel::Inform, __VA_ARGS__)
#define rose_debug(...) ROSE_LOG_AT(::rose::LogLevel::Debug, __VA_ARGS__)

/** Cheap always-on assertion that reports through panic. */
#define rose_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            rose_panic("assertion failed: " #cond " ", ##__VA_ARGS__);       \
        }                                                                    \
    } while (0)

#endif // ROSE_UTIL_LOGGING_HH
