/**
 * @file
 * Thread-safe memoization of shared read-only artifacts.
 *
 * Parallel mission batches (core::BatchRunner) re-request the same
 * expensive immutable objects — world geometry, zoo models — from many
 * worker threads at once. MemoCache builds each artifact exactly once
 * and hands out shared_ptr<const V>, so a 15-point sweep constructs the
 * ResNet description once instead of 15 times and every worker reads
 * the same bytes.
 *
 * The contract that makes sharing deterministic: cached values are
 * immutable after construction (the cache only ever exposes const
 * access), and the builder function must itself be deterministic.
 */

#ifndef ROSE_UTIL_MEMO_HH
#define ROSE_UTIL_MEMO_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace rose {

/** Keyed build-once cache of immutable artifacts. */
template <typename Key, typename Value>
class MemoCache
{
  public:
    /**
     * Return the cached value for @p key, building it with @p build on
     * first request. The build runs under the cache lock: concurrent
     * first requests for one key never build twice, at the cost of
     * serializing builds (fine for construction-time artifacts).
     */
    std::shared_ptr<const Value>
    getOrBuild(const Key &key,
               const std::function<std::shared_ptr<Value>()> &build)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        std::shared_ptr<const Value> v = build();
        cache_.emplace(key, v);
        return v;
    }

    /** Entries currently cached. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return cache_.size();
    }

    /** Drop all entries (outstanding shared_ptrs stay valid). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cache_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const Value>> cache_;
};

} // namespace rose

#endif // ROSE_UTIL_MEMO_HH
