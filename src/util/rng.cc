#include "rng.hh"

#include <cmath>

#include "serde.hh"

namespace rose {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    haveSpare_ = false;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    // Rejection-free modulo is fine for simulation noise streams.
    return next() % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa02e1c5d87f3b911ULL);
}

void
Rng::saveState(StateWriter &w) const
{
    for (uint64_t s : s_)
        w.u64(s);
    w.boolean(haveSpare_);
    w.f64(spare_);
}

void
Rng::restoreState(StateReader &r)
{
    for (uint64_t &s : s_)
        s = r.u64();
    haveSpare_ = r.boolean();
    spare_ = r.f64();
}

} // namespace rose
