/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic model components (sensor noise, classifier error draws,
 * Unreal-style environment jitter) draw from explicitly-seeded Rng
 * instances so that simulations are reproducible: FireSim is deterministic
 * in the paper, and the only nondeterminism comes from the environment
 * simulator, which we reproduce as seeded noise.
 */

#ifndef ROSE_UTIL_RNG_HH
#define ROSE_UTIL_RNG_HH

#include <cstdint>

namespace rose {

class StateWriter;
class StateReader;

/**
 * xoshiro256** generator seeded via SplitMix64. Small, fast, and good
 * enough statistically for simulation noise.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal draw (Box-Muller, cached pair). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Derive an independent child generator (for per-sensor streams). */
    Rng split();

    /** Serialize the full generator state (xoshiro words + Box-Muller
     *  spare) so a restored stream replays bit-identically. */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    uint64_t s_[4] = {};
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace rose

#endif // ROSE_UTIL_RNG_HH
