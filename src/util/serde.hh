/**
 * @file
 * Minimal byte-stream serialization for co-simulation checkpoints.
 *
 * StateWriter/StateReader implement a fixed-width little-endian wire
 * form with no alignment, no implicit framing, and no allocation
 * beyond the backing vector. Every stateful simulation component
 * exposes saveState(StateWriter&) / restoreState(StateReader&) built
 * on these primitives; core/checkpoint.{hh,cc} adds the tagged
 * section framing and integrity hash on top.
 *
 * Doubles are serialized as their IEEE-754 bit pattern (bit_cast via
 * memcpy), so a round trip is bit-exact — which is what makes
 * resume-from-checkpoint missions hash-identical to uninterrupted
 * ones (see tests/test_checkpoint.cc golden resume).
 */

#ifndef ROSE_UTIL_SERDE_HH
#define ROSE_UTIL_SERDE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace rose {

/** Thrown on malformed or truncated checkpoint bytes. */
class SerdeError : public std::runtime_error
{
  public:
    explicit SerdeError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Append-only little-endian byte sink. */
class StateWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }

    void f64(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void f32(float v)
    {
        uint32_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void str(const std::string &s)
    {
        u32(uint32_t(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void bytes(const uint8_t *data, size_t n)
    {
        buf_.insert(buf_.end(), data, data + n);
    }

    const std::vector<uint8_t> &data() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian byte source; throws SerdeError. */
class StateReader
{
  public:
    StateReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit StateReader(const std::vector<uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {}

    uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }

    uint32_t u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    double f64()
    {
        uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    float f32()
    {
        uint32_t bits = u32();
        float v = 0.0f;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    void bytes(uint8_t *out, size_t n)
    {
        need(n);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    /** Skip n bytes (used to step over unknown/disabled sections). */
    void skip(size_t n)
    {
        need(n);
        pos_ += n;
    }

    size_t remaining() const { return size_ - pos_; }
    size_t pos() const { return pos_; }

  private:
    void need(size_t n) const
    {
        if (size_ - pos_ < n)
            throw SerdeError("checkpoint state underrun (need " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(size_ - pos_) + ")");
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // namespace rose

#endif // ROSE_UTIL_SERDE_HH
