#include "stats.hh"

#include <cmath>
#include <sstream>

#include "logging.hh"

namespace rose {

void
ScalarStat::sample(double v)
{
    ++n_;
    sum_ += v;
    double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
ScalarStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
ScalarStat::stddev() const
{
    return std::sqrt(variance());
}

void
ScalarStat::reset()
{
    *this = ScalarStat{};
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    rose_assert(hi > lo, "histogram range must be non-empty");
    rose_assert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        double frac = (v - lo_) / (hi_ - lo_);
        size_t idx = static_cast<size_t>(frac * counts_.size());
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

double
Histogram::binLow(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "hist[" << lo_ << "," << hi_ << ") n=" << total_ << " u="
       << underflow_ << " o=" << overflow_ << " :";
    for (uint64_t c : counts_)
        os << ' ' << c;
    return os.str();
}

} // namespace rose
