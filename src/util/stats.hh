/**
 * @file
 * Lightweight statistics accumulators used by the metrics layer: scalar
 * summaries (count/mean/min/max/stddev) and fixed-bin histograms.
 */

#ifndef ROSE_UTIL_STATS_HH
#define ROSE_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rose {

/** Streaming scalar summary (Welford's online variance). */
class ScalarStat
{
  public:
    /** Record one sample. */
    void sample(double v);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    double stddev() const;

    /** Reset to empty. */
    void reset();

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width histogram over [lo, hi) with out-of-range tail bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void sample(double v);

    size_t bins() const { return counts_.size(); }
    uint64_t binCount(size_t i) const { return counts_.at(i); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLow(size_t i) const;

    /** Render a one-line textual summary (for bench/debug output). */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace rose

#endif // ROSE_UTIL_STATS_HH
