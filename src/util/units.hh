/**
 * @file
 * Simulation time/units vocabulary shared across simulators.
 *
 * The two coupled simulators step in different units (Section 3.4.1): the
 * environment simulator steps in frames, the SoC simulator in clock
 * cycles. Equation 1 of the paper relates them:
 *
 *     airsim_steps / firesim_steps = soc_clock_freq / airsim_frame_freq
 *
 * Cycles is a strong-ish typedef used throughout the SoC side; seconds
 * are plain double on the environment side.
 */

#ifndef ROSE_UTIL_UNITS_HH
#define ROSE_UTIL_UNITS_HH

#include <cstdint>

namespace rose {

/** SoC simulation time in clock cycles. */
using Cycles = uint64_t;

/** Environment simulation time in frames. */
using Frames = uint64_t;

/** One million cycles; sync granularities are quoted in these. */
constexpr Cycles kMegaCycles = 1'000'000ULL;

/**
 * Static parameters relating the two simulators' clocks.
 * Defaults model a 1 GHz SoC synchronized against a 60 Hz environment,
 * the "typical configuration" of Figure 6.
 */
struct ClockRatio
{
    double socClockHz = 1.0e9;
    double envFrameHz = 60.0;

    /** SoC cycles corresponding to one environment frame (Equation 1). */
    Cycles
    cyclesPerFrame() const
    {
        return static_cast<Cycles>(socClockHz / envFrameHz);
    }

    /** Convert a cycle count to seconds of simulated time. */
    double cyclesToSeconds(Cycles c) const
    {
        return static_cast<double>(c) / socClockHz;
    }

    /** Convert simulated seconds to cycles (floor). */
    Cycles secondsToCycles(double s) const
    {
        return static_cast<Cycles>(s * socClockHz);
    }

    /** Duration of one environment frame in seconds. */
    double frameSeconds() const { return 1.0 / envFrameHz; }
};

} // namespace rose

#endif // ROSE_UTIL_UNITS_HH
