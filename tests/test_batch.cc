/**
 * @file
 * BatchRunner determinism contract (src/core/batch.hh): results of a
 * parallel mission batch are identical to serial runMission() for
 * every thread count and scheduling — the property that makes parallel
 * design-space sweeps trustworthy.
 *
 * The parity matrix here runs a seed x SoC-config x DNN-depth spec set
 * through serial runMission() and through BatchRunner at 1, 2, and 8
 * threads (plus any extra counts named in the ROSE_BATCH_JOBS
 * environment variable, comma-separated — CI uses this to pin
 * additional counts), and asserts bit-exact equality of trajectories,
 * collision counts, SoC stats, and inference telemetry. Wall-clock
 * fields are explicitly outside the contract.
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch.hh"
#include "core/experiment.hh"

using namespace rose;

namespace {

/** The parity spec matrix: cheap but diverse (two seeds, two SoCs,
 *  two model depths, both worlds). */
std::vector<core::MissionSpec>
parityMatrix()
{
    std::vector<core::MissionSpec> specs;
    for (uint64_t seed : {1ULL, 2ULL}) {
        for (const char *cfg : {"A", "B"}) {
            for (int depth : {6, 14}) {
                core::MissionSpec spec;
                spec.world = depth == 6 ? "tunnel" : "s-shape";
                spec.socName = cfg;
                spec.modelDepth = depth;
                spec.velocity = depth == 6 ? 3.0 : 9.0;
                spec.seed = seed;
                spec.maxSimSeconds = 6.0;
                specs.push_back(spec);
            }
        }
    }
    return specs;
}

void
expectSameTrajectory(const core::MissionResult &a,
                     const core::MissionResult &b)
{
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (size_t i = 0; i < a.trajectory.size(); ++i) {
        const core::TrajectorySample &s = a.trajectory[i];
        const core::TrajectorySample &t = b.trajectory[i];
        // Bit-exact: determinism means identical doubles, not close
        // ones.
        EXPECT_EQ(s.time, t.time) << "sample " << i;
        EXPECT_EQ(s.position.x, t.position.x) << "sample " << i;
        EXPECT_EQ(s.position.y, t.position.y) << "sample " << i;
        EXPECT_EQ(s.position.z, t.position.z) << "sample " << i;
        EXPECT_EQ(s.yaw, t.yaw) << "sample " << i;
        EXPECT_EQ(s.speed, t.speed) << "sample " << i;
        EXPECT_EQ(s.lateralOffset, t.lateralOffset) << "sample " << i;
        EXPECT_EQ(s.collisions, t.collisions) << "sample " << i;
        EXPECT_EQ(s.cmdForward, t.cmdForward) << "sample " << i;
        EXPECT_EQ(s.cmdLateral, t.cmdLateral) << "sample " << i;
        EXPECT_EQ(s.cmdYawRate, t.cmdYawRate) << "sample " << i;
    }
}

void
expectSameResult(const core::MissionResult &a,
                 const core::MissionResult &b, const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.transportError, b.transportError);
    EXPECT_EQ(a.missionTime, b.missionTime);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.avgSpeed, b.avgSpeed);
    EXPECT_EQ(a.maxSpeed, b.maxSpeed);
    EXPECT_EQ(a.distanceTravelled, b.distanceTravelled);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.avgInferenceLatency, b.avgInferenceLatency);
    EXPECT_EQ(a.accelActivityFactor, b.accelActivityFactor);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.avgPowerWatts, b.avgPowerWatts);
    EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);

    // Full SoC engine counters are cycle-exact.
    EXPECT_EQ(a.socStats.totalCycles, b.socStats.totalCycles);
    EXPECT_EQ(a.socStats.cpuBusyCycles, b.socStats.cpuBusyCycles);
    EXPECT_EQ(a.socStats.accelBusyCycles, b.socStats.accelBusyCycles);
    EXPECT_EQ(a.socStats.ioBusyCycles, b.socStats.ioBusyCycles);
    EXPECT_EQ(a.socStats.rxStallCycles, b.socStats.rxStallCycles);
    EXPECT_EQ(a.socStats.haltIdleCycles, b.socStats.haltIdleCycles);
    EXPECT_EQ(a.socStats.actionsIssued, b.socStats.actionsIssued);
    EXPECT_EQ(a.socStats.periods, b.socStats.periods);

    expectSameTrajectory(a, b);

    ASSERT_EQ(a.inferenceLog.size(), b.inferenceLog.size());
    for (size_t i = 0; i < a.inferenceLog.size(); ++i) {
        const runtime::InferenceRecord &x = a.inferenceLog[i];
        const runtime::InferenceRecord &y = b.inferenceLog[i];
        EXPECT_EQ(x.requestCycle, y.requestCycle) << "inference " << i;
        EXPECT_EQ(x.responseCycle, y.responseCycle) << "inference " << i;
        EXPECT_EQ(x.commandCycle, y.commandCycle) << "inference " << i;
        EXPECT_EQ(x.modelDepth, y.modelDepth) << "inference " << i;
        EXPECT_EQ(x.command.forward, y.command.forward)
            << "inference " << i;
        EXPECT_EQ(x.command.lateral, y.command.lateral)
            << "inference " << i;
        EXPECT_EQ(x.command.yawRate, y.command.yawRate)
            << "inference " << i;
    }

    // The CSV emission path (what EXPERIMENTS.md tables are built
    // from) must therefore also be byte-identical.
    EXPECT_EQ(core::trajectoryCsvString(a), core::trajectoryCsvString(b));
}

/** Thread counts under test: {1, 2, 8} plus ROSE_BATCH_JOBS extras. */
std::vector<int>
jobCounts()
{
    std::vector<int> jobs = {1, 2, 8};
    if (const char *env = std::getenv("ROSE_BATCH_JOBS")) {
        std::string s(env);
        size_t pos = 0;
        while (pos < s.size()) {
            size_t comma = s.find(',', pos);
            if (comma == std::string::npos)
                comma = s.size();
            int j = std::atoi(s.substr(pos, comma - pos).c_str());
            if (j > 0)
                jobs.push_back(j);
            pos = comma + 1;
        }
    }
    return jobs;
}

} // namespace

TEST(BatchParity, MatchesSerialAtEveryThreadCount)
{
    std::vector<core::MissionSpec> specs = parityMatrix();

    // Reference: the plain serial path, one runMission per spec.
    std::vector<core::MissionResult> serial;
    serial.reserve(specs.size());
    for (const core::MissionSpec &spec : specs)
        serial.push_back(core::runMission(spec));

    for (int jobs : jobCounts()) {
        core::BatchRunner runner(core::BatchOptions{jobs});
        std::vector<core::MissionResult> batched = runner.run(specs);

        ASSERT_EQ(batched.size(), serial.size()) << jobs << " jobs";
        for (size_t i = 0; i < specs.size(); ++i) {
            expectSameResult(serial[i], batched[i],
                             specs[i].label() + "/seed" +
                                 std::to_string(specs[i].seed) + "@" +
                                 std::to_string(jobs) + "jobs");
        }

        const core::BatchStats &bs = runner.stats();
        EXPECT_EQ(bs.missions, specs.size());
        EXPECT_EQ(bs.jobs, jobs);
        EXPECT_GT(bs.wallSeconds, 0.0);
        EXPECT_GT(bs.serialSeconds, 0.0);
        ASSERT_EQ(bs.missionWallSeconds.size(), specs.size());
        for (double w : bs.missionWallSeconds)
            EXPECT_GT(w, 0.0);
    }
}

TEST(BatchParity, BatchIsRepeatable)
{
    // Two identical batches at the same thread count are bit-equal —
    // no run-to-run state leaks through the shared artifact caches.
    std::vector<core::MissionSpec> specs = parityMatrix();
    specs.resize(4);

    std::vector<core::MissionResult> a = core::runMissionBatch(specs, 4);
    std::vector<core::MissionResult> b = core::runMissionBatch(specs, 4);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSameResult(a[i], b[i], "repeat/" + specs[i].label());
}

TEST(Batch, EmptyBatch)
{
    core::BatchRunner runner(core::BatchOptions{4});
    EXPECT_TRUE(runner.run({}).empty());
    EXPECT_EQ(runner.stats().missions, 0u);
}

TEST(Batch, ParallelIndexedOrdersResults)
{
    // Results land in submission order even when later indices finish
    // first.
    std::vector<int> out = core::parallelIndexed<int>(
        64, 8, [](size_t i) { return int(i) * 3; });
    ASSERT_EQ(out.size(), 64u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], int(i) * 3);
}

TEST(Batch, JobsZeroUsesHardwareConcurrency)
{
    // jobs == 0 must still produce ordered, complete results.
    std::vector<int> out = core::parallelIndexed<int>(
        7, 0, [](size_t i) { return int(i) + 1; });
    ASSERT_EQ(out.size(), 7u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], int(i) + 1);
}

TEST(Batch, CliParsesAndStripsFlags)
{
    const char *raw[] = {"bench", "--jobs", "6", "positional",
                         "--batch-json", "out.json", "tail"};
    int argc = 7;
    std::vector<char *> argv;
    for (const char *a : raw)
        argv.push_back(const_cast<char *>(a));

    core::BatchCli cli = core::parseBatchCli(argc, argv.data());
    EXPECT_EQ(cli.jobs, 6);
    EXPECT_EQ(cli.jsonPath, "out.json");
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "positional");
    EXPECT_STREQ(argv[2], "tail");
}

TEST(Batch, CliEqualsForms)
{
    const char *raw[] = {"bench", "--jobs=3", "--batch-json="};
    int argc = 3;
    std::vector<char *> argv;
    for (const char *a : raw)
        argv.push_back(const_cast<char *>(a));

    core::BatchCli cli = core::parseBatchCli(argc, argv.data());
    EXPECT_EQ(cli.jobs, 3);
    EXPECT_EQ(cli.jsonPath, "");
    EXPECT_EQ(argc, 1);
}

TEST(Batch, ReportJsonShape)
{
    core::BatchStats s;
    s.missions = 2;
    s.jobs = 4;
    s.wallSeconds = 1.5;
    s.serialSeconds = 4.5;
    s.missionWallSeconds = {2.0, 2.5};

    core::BatchReport report("unit \"test\"");
    report.add("sweep", s);
    EXPECT_EQ(report.missions(), 2u);

    std::string json = report.toJson();
    EXPECT_NE(json.find("\"bench\": \"unit \\\"test\\\"\""),
              std::string::npos);
    EXPECT_NE(json.find("\"missions\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"mission_wall_seconds\": [2, 2.5]"),
              std::string::npos);
}
