/**
 * @file
 * Unit tests for the bridge substrate: packet codecs, wire framing,
 * FIFOs, transports (in-process and TCP loopback), the RoSÉ bridge
 * register file, and the target-side driver.
 */

#include <gtest/gtest.h>

#include "bridge/fifo.hh"
#include "bridge/packet.hh"
#include "bridge/rose_bridge.hh"
#include "bridge/target_driver.hh"
#include "bridge/transport.hh"

using namespace rose;
using namespace rose::bridge;

// --------------------------------------------------------------- codecs

TEST(Packet, SyncGrantRoundTrip)
{
    Packet p = encodeSyncGrant(123456789012345ULL);
    EXPECT_EQ(p.type, PacketType::SyncGrant);
    EXPECT_EQ(decodeSyncGrant(p), 123456789012345ULL);
}

TEST(Packet, SyncDoneAndCfgRoundTrip)
{
    EXPECT_EQ(decodeSyncDone(encodeSyncDone(42)), 42u);
    EXPECT_EQ(decodeCfgStepSize(encodeCfgStepSize(10 * kMegaCycles)),
              10 * kMegaCycles);
}

TEST(Packet, ImuRoundTrip)
{
    env::ImuSample s;
    s.accel = {0.1, -0.2, 9.81};
    s.gyro = {0.01, 0.02, -0.03};
    s.timestamp = 12.375;
    env::ImuSample r = decodeImuResp(encodeImuResp(s));
    EXPECT_DOUBLE_EQ(r.accel.x, s.accel.x);
    EXPECT_DOUBLE_EQ(r.accel.z, s.accel.z);
    EXPECT_DOUBLE_EQ(r.gyro.y, s.gyro.y);
    EXPECT_DOUBLE_EQ(r.timestamp, s.timestamp);
}

TEST(Packet, ImageRoundTripQuantized)
{
    env::Image img(8, 4);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = float(i) / float(img.pixels.size());
    env::Image r = decodeImageResp(encodeImageResp(img));
    EXPECT_EQ(r.width, 8);
    EXPECT_EQ(r.height, 4);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        EXPECT_NEAR(r.pixels[i], img.pixels[i], 1.0 / 255.0);
}

TEST(Packet, ImageDecodeIntoMatchesAndReusesBuffer)
{
    env::Image img(8, 4);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = float(i) / float(img.pixels.size());
    Packet p = encodeImageResp(img);
    env::Image fresh = decodeImageResp(p);
    env::Image reused;
    decodeImageRespInto(p, reused);
    EXPECT_EQ(fresh.width, reused.width);
    EXPECT_EQ(fresh.height, reused.height);
    EXPECT_EQ(fresh.pixels, reused.pixels);
    // Same-size decodes land in the same allocation.
    const float *buf = reused.pixels.data();
    decodeImageRespInto(p, reused);
    EXPECT_EQ(reused.pixels.data(), buf);
    EXPECT_EQ(fresh.pixels, reused.pixels);
}

TEST(Packet, DepthAndVelocityRoundTrip)
{
    EXPECT_DOUBLE_EQ(decodeDepthResp(encodeDepthResp(7.25)), 7.25);
    VelocityCmdPayload v{3.0, -0.5, 0.125};
    VelocityCmdPayload r = decodeVelocityCmd(encodeVelocityCmd(v));
    EXPECT_DOUBLE_EQ(r.forward, 3.0);
    EXPECT_DOUBLE_EQ(r.lateral, -0.5);
    EXPECT_DOUBLE_EQ(r.yawRate, 0.125);
}

TEST(Packet, DataPacketClassification)
{
    EXPECT_FALSE(isDataPacket(PacketType::SyncGrant));
    EXPECT_FALSE(isDataPacket(PacketType::CfgStepSize));
    EXPECT_TRUE(isDataPacket(PacketType::ImuReq));
    EXPECT_TRUE(isDataPacket(PacketType::ImageResp));
    EXPECT_TRUE(isDataPacket(PacketType::VelocityCmd));
}

TEST(Packet, WireFramingRoundTrip)
{
    std::vector<uint8_t> wire;
    serializePacket(encodeDepthResp(3.5), wire);
    serializePacket(encodeImuReq(), wire);

    Packet a, b, c;
    EXPECT_TRUE(deserializePacket(wire, a));
    EXPECT_EQ(a.type, PacketType::DepthResp);
    EXPECT_DOUBLE_EQ(decodeDepthResp(a), 3.5);
    EXPECT_TRUE(deserializePacket(wire, b));
    EXPECT_EQ(b.type, PacketType::ImuReq);
    EXPECT_FALSE(deserializePacket(wire, c));
    EXPECT_TRUE(wire.empty());
}

TEST(Packet, PartialFramesNotConsumed)
{
    std::vector<uint8_t> wire;
    serializePacket(encodeDepthResp(1.0), wire);
    // Feed the buffer one byte at a time; only the complete frame parses.
    std::vector<uint8_t> partial;
    Packet p;
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        partial.push_back(wire[i]);
        EXPECT_FALSE(deserializePacket(partial, p));
    }
    partial.push_back(wire.back());
    EXPECT_TRUE(deserializePacket(partial, p));
}

TEST(Packet, WireSizeMatchesHeaderPlusPayload)
{
    Packet p = encodeSyncGrant(1);
    EXPECT_EQ(p.wireSize(), Packet::kHeaderBytes + 8);
}

// ----------------------------------------------------------------- FIFO

TEST(Fifo, OrderAndAccounting)
{
    PacketFifo f(1024);
    EXPECT_TRUE(f.empty());
    EXPECT_TRUE(f.push(encodeDepthResp(1.0)));
    EXPECT_TRUE(f.push(encodeDepthResp(2.0)));
    EXPECT_EQ(f.packetCount(), 2u);
    EXPECT_EQ(f.usedBytes(), 2 * (Packet::kHeaderBytes + 8));

    Packet p;
    EXPECT_TRUE(f.pop(p));
    EXPECT_DOUBLE_EQ(decodeDepthResp(p), 1.0);
    EXPECT_TRUE(f.pop(p));
    EXPECT_DOUBLE_EQ(decodeDepthResp(p), 2.0);
    EXPECT_FALSE(f.pop(p));
    EXPECT_EQ(f.usedBytes(), 0u);
}

TEST(Fifo, BackpressureWhenFull)
{
    PacketFifo f(20); // one 13-byte depth packet fits, two do not
    EXPECT_TRUE(f.push(encodeDepthResp(1.0)));
    EXPECT_FALSE(f.push(encodeDepthResp(2.0)));
    Packet p;
    EXPECT_TRUE(f.pop(p));
    EXPECT_TRUE(f.push(encodeDepthResp(3.0)));
}

TEST(Fifo, FrontPeekDoesNotConsume)
{
    PacketFifo f(1024);
    EXPECT_EQ(f.front(), nullptr);
    f.push(encodeDepthResp(9.0));
    ASSERT_NE(f.front(), nullptr);
    EXPECT_EQ(f.front()->type, PacketType::DepthResp);
    EXPECT_EQ(f.packetCount(), 1u);
}

// ------------------------------------------------------------ transports

TEST(InProcTransport, BidirectionalOrder)
{
    auto [a, b] = makeInProcPair();
    a->send(encodeDepthResp(1.0));
    a->send(encodeDepthResp(2.0));
    b->send(encodeImuReq());

    Packet p;
    EXPECT_TRUE(b->recv(p));
    EXPECT_DOUBLE_EQ(decodeDepthResp(p), 1.0);
    EXPECT_TRUE(b->recv(p));
    EXPECT_DOUBLE_EQ(decodeDepthResp(p), 2.0);
    EXPECT_FALSE(b->recv(p));

    EXPECT_TRUE(a->recv(p));
    EXPECT_EQ(p.type, PacketType::ImuReq);
    EXPECT_GT(a->bytesSent(), 0u);
    EXPECT_GT(a->bytesReceived(), 0u);
}

TEST(TcpTransport, LoopbackRoundTrip)
{
    auto [server, client] = TcpTransport::makeLoopbackPair();
    client->send(encodeSyncGrant(5 * kMegaCycles));
    client->send(encodeImageReq());

    // Non-blocking: poll until delivery (loopback is effectively
    // immediate, but allow a few spins).
    Packet p;
    int spins = 0;
    while (!server->recv(p) && spins++ < 10000) {}
    EXPECT_EQ(p.type, PacketType::SyncGrant);
    EXPECT_EQ(decodeSyncGrant(p), 5 * kMegaCycles);
    spins = 0;
    while (!server->recv(p) && spins++ < 10000) {}
    EXPECT_EQ(p.type, PacketType::ImageReq);

    // And the reverse direction with a large payload (camera frame).
    env::Image img(64, 48);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = 0.5f;
    server->send(encodeImageResp(img));
    spins = 0;
    while (!client->recv(p) && spins++ < 10000) {}
    env::Image r = decodeImageResp(p);
    EXPECT_EQ(r.width, 64);
    EXPECT_NEAR(r.pixels[100], 0.5f, 1.0 / 255.0);
}

TEST(TcpTransport, PeerCloseSurfacesClosedState)
{
    auto [server, client] = TcpTransport::makeLoopbackPair();
    client->send(encodeDepthResp(6.5));
    client.reset(); // orderly close

    // In-flight data is still delivered...
    Packet p;
    int spins = 0;
    while (!server->recv(p) && spins++ < 10000) {}
    EXPECT_EQ(p.type, PacketType::DepthResp);

    // ...then the close is surfaced instead of "no data" forever.
    spins = 0;
    while (server->state() == TransportState::Open && spins++ < 10000)
        server->recv(p);
    EXPECT_EQ(server->state(), TransportState::Closed);
    EXPECT_FALSE(server->recv(p));

    // Sending into the closed transport fails loudly, not silently.
    EXPECT_THROW(
        {
            for (int i = 0; i < 64; ++i)
                server->send(encodeDepthResp(1.0));
        },
        TransportError);
}

TEST(TcpTransport, CorruptStreamIsRejectedNotLoopedOn)
{
    auto [server, client] = TcpTransport::makeLoopbackPair();
    client->send(encodeDepthResp(1.0));
    Packet p;
    int spins = 0;
    while (!server->recv(p) && spins++ < 10000) {}

    // Inject garbage at the framing layer by sending a packet whose
    // type byte the peer will not recognize: forge it via a raw Packet.
    Packet forged;
    forged.type = static_cast<PacketType>(0x6b);
    forged.payload = {1, 2, 3};
    client->send(forged);
    spins = 0;
    bool threw = false;
    while (spins++ < 10000) {
        try {
            if (server->recv(p))
                continue;
        } catch (const TransportError &e) {
            threw = true;
            EXPECT_NE(std::string(e.what()).find("framing"),
                      std::string::npos);
            break;
        }
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(server->state(), TransportState::Error);
}

TEST(TcpTransport, WaitReadableSeesInFlightData)
{
    auto [server, client] = TcpTransport::makeLoopbackPair();
    EXPECT_FALSE(server->waitReadable(0));
    client->send(encodeImuReq());
    EXPECT_TRUE(server->waitReadable(1000));
    Packet p;
    ASSERT_TRUE(server->recv(p));
    EXPECT_EQ(p.type, PacketType::ImuReq);
}

TEST(InProcTransport, PeerDestructionSurfacesClosedState)
{
    auto [a, b] = makeInProcPair();
    EXPECT_EQ(a->state(), TransportState::Open);
    b.reset();
    EXPECT_EQ(a->state(), TransportState::Closed);
    EXPECT_THROW(a->send(encodeImuReq()), TransportError);
}

// ----------------------------------------------------------- RoseBridge

namespace {

struct BridgeHarness
{
    std::unique_ptr<Transport> hostEnd;
    std::unique_ptr<Transport> bridgeEnd;
    RoseBridge bridge;

    BridgeHarness(BridgeConfig cfg = {})
        : bridge((init(), *bridgeEnd), cfg)
    {
    }

  private:
    void
    init()
    {
        auto [a, b] = makeInProcPair();
        hostEnd = std::move(a);
        bridgeEnd = std::move(b);
    }
};

} // namespace

TEST(RoseBridge, GrantsAccumulateBudget)
{
    BridgeHarness h;
    EXPECT_TRUE(h.bridge.stalled());
    h.hostEnd->send(encodeSyncGrant(1000));
    h.hostEnd->send(encodeCfgStepSize(1000));
    h.bridge.hostService();
    EXPECT_EQ(h.bridge.cycleBudget(), 1000u);
    EXPECT_EQ(h.bridge.cyclesPerSync(), 1000u);
    EXPECT_FALSE(h.bridge.stalled());

    h.bridge.consumeCycles(400);
    EXPECT_EQ(h.bridge.cycleBudget(), 600u);
    h.bridge.consumeCycles(600);
    EXPECT_TRUE(h.bridge.stalled());
}

TEST(RoseBridgeDeathTest, OverconsumePanics)
{
    BridgeHarness h;
    h.hostEnd->send(encodeSyncGrant(10));
    h.bridge.hostService();
    EXPECT_DEATH(h.bridge.consumeCycles(11), "granted");
}

TEST(RoseBridge, CompleteSyncSendsDone)
{
    BridgeHarness h;
    h.bridge.completeSync(12345);
    Packet p;
    ASSERT_TRUE(h.hostEnd->recv(p));
    EXPECT_EQ(p.type, PacketType::SyncDone);
    EXPECT_EQ(decodeSyncDone(p), 12345u);
}

TEST(RoseBridge, DataPacketsLandInRxFifo)
{
    BridgeHarness h;
    h.hostEnd->send(encodeDepthResp(4.5));
    h.bridge.hostService();
    EXPECT_EQ(h.bridge.rxFifo().packetCount(), 1u);
    EXPECT_EQ(h.bridge.stats().rxPackets, 1u);
    // Visible through the register file.
    EXPECT_EQ(h.bridge.read(reg::kRxCount), 1u);
    EXPECT_EQ(h.bridge.read(reg::kRxType),
              uint32_t(PacketType::DepthResp));
    EXPECT_EQ(h.bridge.read(reg::kRxLen), 8u);
}

TEST(RoseBridge, RxOverflowDropsAndCounts)
{
    BridgeConfig small;
    small.rxFifoBytes = 16; // one depth packet (13B), no more
    BridgeHarness h(small);
    h.hostEnd->send(encodeDepthResp(1.0));
    h.hostEnd->send(encodeDepthResp(2.0));
    h.bridge.hostService();
    EXPECT_EQ(h.bridge.stats().rxPackets, 1u);
    EXPECT_EQ(h.bridge.stats().rxDropped, 1u);
}

TEST(RoseBridge, MmioTxAssemblesPacket)
{
    BridgeHarness h;
    // Hand-roll a VelocityCmd through the register interface.
    Packet ref = encodeVelocityCmd({1.0, 2.0, 3.0});
    h.bridge.write(reg::kTxType, uint32_t(ref.type));
    h.bridge.write(reg::kTxLen, uint32_t(ref.payload.size()));
    for (size_t off = 0; off < ref.payload.size(); off += 4) {
        uint32_t w = 0;
        for (size_t b = 0; b < 4 && off + b < ref.payload.size(); ++b)
            w |= uint32_t(ref.payload[off + b]) << (8 * b);
        h.bridge.write(reg::kTxData, w);
    }
    h.bridge.write(reg::kTxCommit, 1);
    EXPECT_EQ(h.bridge.txFifo().packetCount(), 1u);

    // hostService flushes it to the transport.
    h.bridge.hostService();
    Packet p;
    ASSERT_TRUE(h.hostEnd->recv(p));
    VelocityCmdPayload v = decodeVelocityCmd(p);
    EXPECT_DOUBLE_EQ(v.forward, 1.0);
    EXPECT_DOUBLE_EQ(v.lateral, 2.0);
    EXPECT_DOUBLE_EQ(v.yawRate, 3.0);
}

TEST(RoseBridge, BudgetRegistersReadable)
{
    BridgeHarness h;
    h.hostEnd->send(encodeSyncGrant((uint64_t(7) << 32) | 5u));
    h.bridge.hostService();
    EXPECT_EQ(h.bridge.read(reg::kBudgetLo), 5u);
    EXPECT_EQ(h.bridge.read(reg::kBudgetHi), 7u);
}

// -------------------------------------------------------- TargetDriver

TEST(TargetDriver, RoundTripThroughBridge)
{
    BridgeHarness h;
    TargetDriver drv(h.bridge);

    // SoC -> host.
    EXPECT_TRUE(drv.txSend(encodeImageReq()));
    h.bridge.hostService();
    Packet p;
    ASSERT_TRUE(h.hostEnd->recv(p));
    EXPECT_EQ(p.type, PacketType::ImageReq);

    // Host -> SoC.
    env::Image img(16, 12);
    img.pixels.assign(img.pixels.size(), 0.25f);
    h.hostEnd->send(encodeImageResp(img));
    h.bridge.hostService();

    EXPECT_EQ(drv.rxCount(), 1u);
    auto rx = drv.rxPop();
    ASSERT_TRUE(rx.has_value());
    env::Image out = decodeImageResp(*rx);
    EXPECT_EQ(out.width, 16);
    EXPECT_NEAR(out.pixels[7], 0.25f, 1.0 / 255.0);
    EXPECT_FALSE(drv.rxPop().has_value());
}

TEST(TargetDriver, AccessCountingTracksMmio)
{
    BridgeHarness h;
    TargetDriver drv(h.bridge);
    drv.takeAccessCount();

    h.hostEnd->send(encodeDepthResp(2.0));
    h.bridge.hostService();
    auto rx = drv.rxPop();
    ASSERT_TRUE(rx.has_value());
    // rxPop: count + type + len + 2 data words + consume = 6 accesses.
    EXPECT_EQ(drv.takeAccessCount(), 6u);
    EXPECT_EQ(drv.takeAccessCount(), 0u);
}

TEST(TargetDriver, TxBackpressureReported)
{
    BridgeConfig tiny;
    tiny.txFifoBytes = 4; // nothing fits (header alone is 5 bytes)
    BridgeHarness h(tiny);
    TargetDriver drv(h.bridge);
    EXPECT_FALSE(drv.txSend(encodeImageReq()));
    EXPECT_FALSE(drv.txSend(encodeVelocityCmd({1, 2, 3})));
}

// ----------------------------------------------------------- robustness

namespace {

/** Hand-assemble a raw frame with an arbitrary type byte and length
 *  field (the length may lie about the payload that follows). */
std::vector<uint8_t>
rawFrame(uint8_t type, uint32_t claimed_len,
         const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> wire;
    wire.push_back(type);
    wire.push_back(claimed_len & 0xff);
    wire.push_back((claimed_len >> 8) & 0xff);
    wire.push_back((claimed_len >> 16) & 0xff);
    wire.push_back((claimed_len >> 24) & 0xff);
    wire.insert(wire.end(), payload.begin(), payload.end());
    return wire;
}

} // namespace

TEST(Framing, RejectsUnknownTypeByte)
{
    std::vector<uint8_t> wire = rawFrame(0x7f, 0, {});
    Packet p;
    size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(wire.data(), wire.size(), consumed, p, &err),
              FrameStatus::Malformed);
    EXPECT_EQ(consumed, 0u);
    EXPECT_NE(err.find("unknown packet type"), std::string::npos);
}

TEST(Framing, RejectsOversizedLengthWithoutAllocating)
{
    // A length field claiming 4 GiB must be rejected from the 5 header
    // bytes alone — no allocation, no waiting for bytes that can never
    // legitimately arrive.
    std::vector<uint8_t> wire =
        rawFrame(uint8_t(PacketType::DepthResp), 0xffffffffu, {});
    Packet p;
    size_t consumed = 0;
    std::string err;
    EXPECT_EQ(tryDecodeFrame(wire.data(), wire.size(), consumed, p, &err),
              FrameStatus::Malformed);
    EXPECT_NE(err.find("kMaxPayloadBytes"), std::string::npos);

    // One past the bound is equally malformed.
    wire = rawFrame(uint8_t(PacketType::ImageResp),
                    uint32_t(kMaxPayloadBytes) + 1, {});
    EXPECT_EQ(tryDecodeFrame(wire.data(), wire.size(), consumed, p, &err),
              FrameStatus::Malformed);
}

TEST(Framing, TruncatedFrameIsNeedMoreNotHang)
{
    std::vector<uint8_t> wire;
    serializePacket(encodeDepthResp(2.5), wire);
    Packet p;
    size_t consumed = 1234;
    for (size_t n = 0; n < wire.size(); ++n) {
        EXPECT_EQ(tryDecodeFrame(wire.data(), n, consumed, p),
                  FrameStatus::NeedMore);
        EXPECT_EQ(consumed, 0u);
    }
    EXPECT_EQ(tryDecodeFrame(wire.data(), wire.size(), consumed, p),
              FrameStatus::Ok);
    EXPECT_EQ(consumed, wire.size());
}

TEST(Framing, LegacyWrapperDropsMalformedBuffer)
{
    std::vector<uint8_t> buf = rawFrame(0xee, 3, {1, 2, 3});
    Packet p;
    EXPECT_FALSE(deserializePacket(buf, p));
    EXPECT_TRUE(buf.empty()); // unframeable stream is discarded
}

TEST(Framing, FrameBufferDrainsSplitStream)
{
    // Serialize every packet type back to back, feed the bytes to a
    // FrameBuffer in awkward 7-byte slices, and verify each frame
    // round-trips in order.
    env::Image img(8, 4);
    img.pixels.assign(img.pixels.size(), 0.5f);
    std::vector<Packet> sent = {
        encodeSyncGrant(17),         encodeSyncDone(17),
        encodeCfgStepSize(1000),     encodeImuReq(),
        encodeImuResp({}),           encodeImageReq(),
        encodeImageResp(img),        encodeDepthReq(),
        encodeDepthResp(4.25),       encodeVelocityCmd({1, 2, 3}),
    };
    std::vector<uint8_t> wire;
    for (const Packet &p : sent)
        serializePacket(p, wire);

    FrameBuffer fb;
    std::vector<Packet> got;
    for (size_t off = 0; off < wire.size(); off += 7) {
        size_t n = std::min<size_t>(7, wire.size() - off);
        fb.append(wire.data() + off, n);
        Packet p;
        while (fb.next(p) == FrameStatus::Ok)
            got.push_back(p);
    }
    ASSERT_EQ(got.size(), sent.size());
    for (size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(got[i].type, sent[i].type) << "packet " << i;
        EXPECT_EQ(got[i].payload, sent[i].payload) << "packet " << i;
    }
    EXPECT_EQ(fb.pendingBytes(), 0u);
}

TEST(Framing, FrameBufferPoisonsOnMalformed)
{
    FrameBuffer fb;
    std::vector<uint8_t> good;
    serializePacket(encodeDepthResp(1.0), good);
    fb.append(good.data(), good.size());
    std::vector<uint8_t> bad = rawFrame(0x42, 1, {9});
    fb.append(bad.data(), bad.size());

    Packet p;
    EXPECT_EQ(fb.next(p), FrameStatus::Ok); // the good frame first
    std::string err;
    EXPECT_EQ(fb.next(p, &err), FrameStatus::Malformed);
    // Once framing is lost the stream stays rejected.
    fb.append(good.data(), good.size());
    EXPECT_EQ(fb.next(p), FrameStatus::Malformed);
    fb.clear();
    fb.append(good.data(), good.size());
    EXPECT_EQ(fb.next(p), FrameStatus::Ok);
}

TEST(Framing, FuzzedBuffersNeverOverreadOrHang)
{
    // Random byte soup through the validated parser: every buffer must
    // resolve to Ok frames followed by NeedMore or Malformed — never a
    // crash, a hang, or a payload above the bound.
    rose::Rng rng(12345);
    for (int trial = 0; trial < 500; ++trial) {
        size_t n = 1 + rng.uniformInt(256);
        std::vector<uint8_t> buf(n);
        for (uint8_t &b : buf)
            b = uint8_t(rng.uniformInt(256));
        FrameBuffer fb;
        fb.append(buf.data(), buf.size());
        Packet p;
        size_t guard = 0;
        FrameStatus s;
        while ((s = fb.next(p)) == FrameStatus::Ok) {
            EXPECT_LE(p.payload.size(), kMaxPayloadBytes);
            ASSERT_LT(guard++, buf.size()) << "parser failed to make "
                                              "progress";
        }
        EXPECT_TRUE(s == FrameStatus::NeedMore ||
                    s == FrameStatus::Malformed);
    }
}

TEST(Packet, TruncatedPayloadThrows)
{
    // A data packet whose payload is shorter than its decoder expects
    // must fail loudly (never read out of bounds) — but as a catchable
    // PayloadError, since fault injection can corrupt length fields
    // and the resilience layer recovers from it.
    Packet p;
    p.type = PacketType::DepthResp;
    p.payload = {1, 2, 3}; // needs 8 bytes
    EXPECT_THROW(decodeDepthResp(p), PayloadError);
}

TEST(RoseBridge, UnmappedRegistersAreBenign)
{
    BridgeHarness h;
    EXPECT_EQ(h.bridge.read(0xF8), 0u);
    h.bridge.write(0xF8, 42); // warns, does not crash
    EXPECT_EQ(h.bridge.stats().mmioReads, 1u);
    EXPECT_EQ(h.bridge.stats().mmioWrites, 1u);
}
