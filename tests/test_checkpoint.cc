/**
 * @file
 * Tests for the resilience layer's state machinery: the serde
 * primitives, checkpoint capture/restore (including bit-identical
 * golden resume of the canonical missions), the disk format, the
 * in-memory ring, and the fail-fast physics divergence guard.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/supervisor.hh"
#include "env/envsim.hh"
#include "env/vehicle.hh"
#include "util/hash.hh"
#include "util/serde.hh"

using namespace rose;
using namespace rose::core;

// ------------------------------------------------------------------ serde

TEST(Serde, RoundTripsEveryType)
{
    StateWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFULL);
    w.f64(-1.5e-300);
    w.f32(3.25f);
    w.boolean(true);
    w.boolean(false);
    w.str("rosé");
    w.str("");

    StateReader r(w.data());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.f64(), -1.5e-300);
    EXPECT_EQ(r.f32(), 3.25f);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "rosé");
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serde, FloatBitPatternsSurviveExactly)
{
    // Checkpoint determinism rests on doubles round-tripping as bit
    // patterns, including the values ordinary text formatting mangles.
    const double values[] = {
        0.0, -0.0, 1.0 / 3.0, std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
    };
    StateWriter w;
    for (double v : values)
        w.f64(v);
    StateReader r(w.data());
    for (double v : values) {
        double got = r.f64();
        uint64_t vb, gb;
        std::memcpy(&vb, &v, 8);
        std::memcpy(&gb, &got, 8);
        EXPECT_EQ(vb, gb);
    }
}

TEST(Serde, UnderrunThrows)
{
    StateWriter w;
    w.u32(7);
    StateReader r(w.data());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u8(), SerdeError);

    StateReader r2(w.data());
    EXPECT_THROW(r2.u64(), SerdeError);

    // A string whose declared length exceeds the buffer must throw,
    // not read out of bounds.
    StateWriter w3;
    w3.u32(1000);
    StateReader r3(w3.data());
    EXPECT_THROW(r3.str(), SerdeError);
}

TEST(Serde, SkipStepsOverBytes)
{
    StateWriter w;
    w.u32(1);
    w.u32(2);
    w.u32(3);
    StateReader r(w.data());
    r.skip(4);
    EXPECT_EQ(r.u32(), 2u);
    EXPECT_THROW(r.skip(100), SerdeError);
}

// ----------------------------------------------------------------- ring

TEST(CheckpointRing, EvictsOldestAtCapacity)
{
    CheckpointRing ring(2);
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring.latest(), CheckpointError);
    EXPECT_THROW(ring.oldest(), CheckpointError);

    for (uint64_t p = 1; p <= 4; ++p) {
        Checkpoint ck;
        ck.period = p;
        ring.push(ck);
    }
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.oldest().period, 3u);
    EXPECT_EQ(ring.latest().period, 4u);

    EXPECT_TRUE(ring.dropLatest());
    EXPECT_EQ(ring.latest().period, 3u);
    EXPECT_TRUE(ring.dropLatest());
    EXPECT_FALSE(ring.dropLatest());
    EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------- capture/restore

namespace {

/** The canonical golden mission (mirrors tests/test_golden.cc). */
core::MissionSpec
canonicalSpec(const std::string &soc_name)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = soc_name;
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = 1;
    spec.maxSimSeconds = 10.0;
    return spec;
}

struct Golden
{
    const char *socName;
    uint64_t trajectoryHash;
    size_t trajectorySamples;
    uint64_t collisions;
};

// Keep in sync with tests/test_golden.cc (regenerate there with
// ROSE_REGEN_GOLDEN=1). Resume-from-checkpoint must land on these
// exact hashes — that is the bit-identity contract.
constexpr Golden kGolden[] = {
    {"A", 0x2b24ad514f06c3cbULL, 1000, 0},
    {"B", 0x02771540364e358fULL, 1000, 0},
    {"C", 0x0e337585f9a29f6aULL, 1000, 27},
};

} // namespace

TEST(Checkpoint, CaptureIsSideEffectFree)
{
    // Taking a checkpoint must not perturb the simulation: two
    // interleaved captures of the same instant are byte-identical.
    CosimConfig cfg = canonicalSpec("A").toConfig();
    cfg.maxSimSeconds = 2.0;
    CoSimulation sim(cfg);
    for (int i = 0; i < 25; ++i)
        sim.stepPeriod();

    Checkpoint a = sim.checkpoint();
    Checkpoint b = sim.checkpoint();
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.stateHash, b.stateHash);
    EXPECT_EQ(a.period, 25u);
    EXPECT_EQ(stateHashOf(a.state), a.stateHash);
}

TEST(Checkpoint, RestoreRoundTripsToIdenticalState)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    CoSimulation sim(cfg);
    for (int i = 0; i < 50; ++i)
        sim.stepPeriod();
    Checkpoint ck = sim.checkpoint();

    // Restore into a *fresh* instance and re-capture: the blob must be
    // byte-identical, i.e. save/restore are exact inverses.
    CoSimulation sim2(cfg);
    sim2.restore(ck);
    Checkpoint ck2 = sim2.checkpoint();
    EXPECT_EQ(ck.state, ck2.state);
    EXPECT_EQ(ck2.period, 50u);
    EXPECT_DOUBLE_EQ(ck2.simTime, ck.simTime);
}

TEST(Checkpoint, ResumeMatchesGoldenTraces)
{
    // The headline contract: run halfway, checkpoint, restore into a
    // fresh co-simulation, finish — and land on the same checked-in
    // FNV-1a trajectory hash as the uninterrupted golden run, for all
    // three Table 2 configs.
    for (const Golden &g : kGolden) {
        SCOPED_TRACE(std::string("config ") + g.socName);
        CosimConfig cfg = canonicalSpec(g.socName).toConfig();

        CoSimulation first(cfg);
        while (first.environment().simTime() < 5.0)
            first.stepPeriod();
        Checkpoint ck = first.checkpoint();

        CoSimulation resumed(cfg);
        resumed.restore(ck);
        MissionResult r = resumed.run();

        EXPECT_EQ(r.trajectory.size(), g.trajectorySamples);
        EXPECT_EQ(r.collisions, g.collisions);
        EXPECT_EQ(fnv1a(core::trajectoryCsvString(r)), g.trajectoryHash)
            << "resumed trajectory diverged from the golden trace";
    }
}

TEST(Checkpoint, RefusesForeignConfig)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    CoSimulation sim(cfg);
    for (int i = 0; i < 10; ++i)
        sim.stepPeriod();
    Checkpoint ck = sim.checkpoint();

    CosimConfig other = canonicalSpec("B").toConfig();
    CoSimulation sim2(other);
    EXPECT_THROW(sim2.restore(ck), CheckpointError);

    Checkpoint bad = ck;
    bad.version = 99;
    EXPECT_THROW(sim.restore(bad), CheckpointError);
}

TEST(Checkpoint, FingerprintIgnoresResilienceKnobs)
{
    // The supervisor mutates faults / transport / time limits between
    // capture and restore; the fingerprint must not change with them.
    CosimConfig cfg = canonicalSpec("A").toConfig();
    uint64_t base = configFingerprint(cfg);

    CosimConfig tweaked = cfg;
    tweaked.faults.enabled = true;
    tweaked.faults.dropProb = 0.5;
    tweaked.transport = TransportKind::Tcp;
    tweaked.maxSimSeconds = 99.0;
    tweaked.sync.syncDeadlineMs = 1;
    tweaked.app.sensorTimeoutCycles = 123;
    EXPECT_EQ(configFingerprint(tweaked), base);

    CosimConfig different = cfg;
    different.env.seed = 2;
    EXPECT_NE(configFingerprint(different), base);
}

TEST(Checkpoint, TcpTransportIsNotCheckpointable)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    cfg.transport = TransportKind::Tcp;
    CoSimulation sim(cfg);
    EXPECT_FALSE(sim.checkpointable());
    EXPECT_THROW(sim.checkpoint(), CheckpointError);
}

TEST(Checkpoint, FaultInjectorStateIsCaptured)
{
    // A faulty run checkpoints the injector (its RNG position and
    // held packets); restore + resume must replay identically.
    core::MissionSpec spec = canonicalSpec("A");
    spec.maxSimSeconds = 4.0;
    spec.faults.enabled = true;
    spec.faults.dropProb = 0.05;
    spec.faults.delayProb = 0.05;
    CosimConfig cfg = spec.toConfig();

    CoSimulation first(cfg);
    while (first.environment().simTime() < 2.0)
        first.stepPeriod();
    Checkpoint ck = first.checkpoint();
    MissionResult rest = first.run();

    CoSimulation resumed(cfg);
    resumed.restore(ck);
    MissionResult rest2 = resumed.run();

    EXPECT_EQ(core::trajectoryCsvString(rest),
              core::trajectoryCsvString(rest2));
    EXPECT_EQ(rest.inferences, rest2.inferences);
}

// ------------------------------------------------------------ disk format

TEST(CheckpointFile, RoundTripsAndValidates)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    CoSimulation sim(cfg);
    for (int i = 0; i < 20; ++i)
        sim.stepPeriod();
    Checkpoint ck = sim.checkpoint();

    std::string path = ::testing::TempDir() + "rose_ckpt_test.bin";
    writeCheckpointFile(path, ck);
    Checkpoint back = readCheckpointFile(path);
    EXPECT_EQ(back.version, ck.version);
    EXPECT_EQ(back.period, ck.period);
    EXPECT_EQ(back.configFingerprint, ck.configFingerprint);
    EXPECT_EQ(back.state, ck.state);
    EXPECT_EQ(back.stateHash, ck.stateHash);

    // And it actually restores.
    CoSimulation sim2(cfg);
    sim2.restore(back);
    EXPECT_EQ(sim2.periods(), 20u);
    std::remove(path.c_str());
}

TEST(CheckpointFile, DetectsCorruptionAndTruncation)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    CoSimulation sim(cfg);
    for (int i = 0; i < 5; ++i)
        sim.stepPeriod();
    Checkpoint ck = sim.checkpoint();

    std::string path = ::testing::TempDir() + "rose_ckpt_corrupt.bin";
    writeCheckpointFile(path, ck);

    // Flip one byte in the middle of the state blob.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(64);
        char c;
        f.seekg(64);
        f.get(c);
        f.seekp(64);
        f.put(char(c ^ 0x40));
    }
    EXPECT_THROW(readCheckpointFile(path), CheckpointError);

    // Truncate the file.
    writeCheckpointFile(path, ck);
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> all((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
        in.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(), std::streamsize(all.size() / 2));
    }
    EXPECT_THROW(readCheckpointFile(path), CheckpointError);

    // Bad magic.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "NOTACKPTxxxxxxxxxxxxxxxx";
    }
    EXPECT_THROW(readCheckpointFile(path), CheckpointError);

    EXPECT_THROW(readCheckpointFile(path + ".does-not-exist"),
                 CheckpointError);
    std::remove(path.c_str());
}

// ------------------------------------------------------ divergence guard

TEST(DivergenceGuard, NonFinitePhysicsStateFailsFast)
{
    env::EnvConfig cfg;
    env::EnvSim sim(cfg);
    sim.stepFrames(5);

    // Corrupt the vehicle state with a NaN position through the serde
    // path (position is the leading field of the drone's state blob).
    env::VehicleModel &vehicle = sim.mutableVehicle();
    StateWriter w;
    vehicle.saveState(w);
    std::vector<uint8_t> bytes = w.take();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(bytes.data(), &nan, sizeof(nan));
    StateReader r(bytes);
    vehicle.restoreState(r);

    try {
        sim.stepFrames(1);
        FAIL() << "expected env::DivergenceError";
    } catch (const env::DivergenceError &e) {
        // The diagnostic dump names the offending state.
        EXPECT_NE(std::string(e.what()).find("non-finite"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("pos="), std::string::npos);
    }
}
