/**
 * @file
 * Integration tests of the full co-simulation: end-to-end missions
 * across configs, determinism, TCP transport parity, granularity
 * effects, the host throughput model, and experiment helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/hostmodel.hh"

using namespace rose;
using namespace rose::core;

namespace {

MissionSpec
tunnelSpec()
{
    MissionSpec s;
    s.world = "tunnel";
    s.socName = "A";
    s.modelDepth = 14;
    s.velocity = 3.0;
    s.maxSimSeconds = 40.0;
    return s;
}

} // namespace

TEST(Cosim, TunnelMissionCompletes)
{
    MissionResult r = runMission(tunnelSpec());
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.collisions, 0u);
    EXPECT_GT(r.missionTime, 10.0);
    EXPECT_LT(r.missionTime, 30.0);
    EXPECT_GT(r.inferences, 50u);
    EXPECT_GT(r.avgSpeed, 2.0);
    EXPECT_FALSE(r.trajectory.empty());
    EXPECT_GT(r.simulatedCycles, Cycles(1e9));
}

TEST(Cosim, AngledStartsRecover)
{
    for (double yaw : {-20.0, 20.0}) {
        MissionSpec s = tunnelSpec();
        s.initialYawDeg = yaw;
        MissionResult r = runMission(s);
        EXPECT_TRUE(r.completed) << "yaw " << yaw;
        EXPECT_EQ(r.collisions, 0u) << "yaw " << yaw;
    }
}

TEST(Cosim, CpuOnlyConfigCannotNavigate)
{
    // Figure 10(c): config C's multi-second inference latency.
    MissionSpec s = tunnelSpec();
    s.socName = "C";
    s.initialYawDeg = 20.0;
    s.maxSimSeconds = 30.0;
    MissionResult r = runMission(s);
    EXPECT_GT(r.collisions, 0u);
    EXPECT_GT(r.avgInferenceLatency, 1.0); // seconds, not ms
}

TEST(Cosim, DeterministicAcrossRuns)
{
    MissionSpec s = tunnelSpec();
    s.seed = 99;
    MissionResult a = runMission(s);
    MissionResult b = runMission(s);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.missionTime, b.missionTime);
    EXPECT_EQ(a.inferences, b.inferences);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (size_t i = 0; i < a.trajectory.size(); i += 37) {
        EXPECT_DOUBLE_EQ(a.trajectory[i].position.y,
                         b.trajectory[i].position.y);
    }
}

TEST(Cosim, SeedsProduceDifferentTrajectories)
{
    MissionSpec a = tunnelSpec(), b = tunnelSpec();
    a.seed = 1;
    b.seed = 2;
    MissionResult ra = runMission(a);
    MissionResult rb = runMission(b);
    // Same outcome class, different noise realizations.
    EXPECT_NE(ra.trajectory.back().position.y,
              rb.trajectory.back().position.y);
}

TEST(Cosim, TcpTransportMatchesInProcess)
{
    // The real-socket transport must carry the co-simulation to the
    // same deterministic result as the in-process channel.
    MissionSpec s = tunnelSpec();
    s.maxSimSeconds = 10.0;

    CosimConfig inproc = s.toConfig();
    inproc.transport = TransportKind::InProcess;
    CosimConfig tcp = s.toConfig();
    tcp.transport = TransportKind::Tcp;

    CoSimulation sim_a(inproc);
    MissionResult ra = sim_a.run();
    CoSimulation sim_b(tcp);
    MissionResult rb = sim_b.run();

    EXPECT_EQ(ra.inferences, rb.inferences);
    ASSERT_FALSE(ra.trajectory.empty());
    ASSERT_EQ(ra.trajectory.size(), rb.trajectory.size());
    EXPECT_DOUBLE_EQ(ra.trajectory.back().position.x,
                     rb.trajectory.back().position.x);
    EXPECT_DOUBLE_EQ(ra.trajectory.back().position.y,
                     rb.trajectory.back().position.y);
}

TEST(Cosim, CoarseGranularityInflatesLatency)
{
    // Figure 16(c): artificial latency grows with sync granularity.
    MissionSpec fine = tunnelSpec();
    fine.syncGranularity = 10 * kMegaCycles;
    fine.maxSimSeconds = 12.0;
    MissionSpec coarse = tunnelSpec();
    coarse.syncGranularity = 400 * kMegaCycles;
    coarse.maxSimSeconds = 12.0;

    MissionResult rf = runMission(fine);
    MissionResult rc = runMission(coarse);
    ASSERT_GT(rf.inferences, 0u);
    ASSERT_GT(rc.inferences, 0u);
    EXPECT_GT(rc.avgInferenceLatency, 2.5 * rf.avgInferenceLatency);
    // Fine granularity sits only slightly above the ~83 ms compute.
    EXPECT_LT(rf.avgInferenceLatency, 0.12);
    EXPECT_GT(rf.avgInferenceLatency, 0.08);
}

TEST(Cosim, GranularityPreservesSimulatedTimebase)
{
    // Whatever the granularity, env time and SoC time advance in
    // lockstep per Equation 1.
    for (Cycles g : {10 * kMegaCycles, 50 * kMegaCycles}) {
        MissionSpec s = tunnelSpec();
        s.syncGranularity = g;
        s.maxSimSeconds = 5.0;
        CosimConfig cfg = s.toConfig();
        CoSimulation sim(cfg);
        for (int i = 0; i < 20; ++i)
            sim.stepPeriod();
        double env_t = sim.environment().simTime();
        double soc_t = sim.socSim().nowSeconds();
        EXPECT_NEAR(env_t, soc_t, 0.011); // within one frame
    }
}

TEST(Cosim, StatsPlumbedThrough)
{
    MissionSpec s = tunnelSpec();
    s.maxSimSeconds = 6.0;
    CosimConfig cfg = s.toConfig();
    CoSimulation sim(cfg);
    MissionResult r = sim.run();
    const sync::SyncStats &ss = sim.synchronizer().stats();
    EXPECT_EQ(ss.periods, sim.periods());
    EXPECT_EQ(ss.grantsSent, ss.donesReceived);
    EXPECT_GT(ss.imageRequests, 0u);
    // Every serviced request lands in the bridge RX queue, except a
    // response still in flight when the run ends.
    EXPECT_GE(ss.imageRequests, sim.bridge().stats().rxPackets);
    EXPECT_LE(ss.imageRequests, sim.bridge().stats().rxPackets + 1);
    EXPECT_GT(r.accelActivityFactor, 0.0);
}

// ------------------------------------------------------------ hostmodel

TEST(HostModel, TwoBottleneckRegimes)
{
    HostModel h;
    // Throughput is monotone in granularity and approaches the FPGA
    // rate from below.
    double prev = 0.0;
    for (Cycles g : granularitySweep()) {
        double thr = h.throughputHz(g);
        EXPECT_GT(thr, prev);
        EXPECT_LT(thr, h.fpgaRateHz);
        prev = thr;
    }
    // Fine grain is sync-overhead bound; coarse grain is not.
    EXPECT_GT(h.syncOverheadFraction(1 * kMegaCycles), 0.5);
    EXPECT_LT(h.syncOverheadFraction(400 * kMegaCycles), 0.05);
}

TEST(HostModel, SweepCoversPaperRange)
{
    std::vector<Cycles> sweep = granularitySweep();
    EXPECT_EQ(sweep.front(), 10 * kMegaCycles);
    EXPECT_EQ(sweep.back(), 400 * kMegaCycles);
}

// ----------------------------------------------------------- experiment

TEST(Experiment, SpecRoundTrip)
{
    MissionSpec s;
    s.world = "s-shape";
    s.socName = "B";
    s.modelDepth = 18;
    s.velocity = 9.0;
    CosimConfig cfg = s.toConfig();
    EXPECT_EQ(cfg.env.worldName, "s-shape");
    EXPECT_EQ(cfg.soc.cpu, soc::CpuModel::Rocket);
    EXPECT_EQ(cfg.app.modelDepth, 18);
    EXPECT_DOUBLE_EQ(cfg.app.policy.forwardVelocity, 9.0);
    EXPECT_NE(s.label().find("s-shape"), std::string::npos);
    EXPECT_NE(s.label().find("ResNet18"), std::string::npos);
}

TEST(Experiment, TrajectoryCsvWritten)
{
    MissionSpec s = tunnelSpec();
    s.maxSimSeconds = 3.0;
    MissionResult r = runMission(s);
    std::string path = "/tmp/rose_test_traj.csv";
    writeTrajectoryCsv(path, r);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header.substr(0, 7), "t,x,y,z");
    size_t lines = 0;
    std::string line;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, r.trajectory.size());
    std::remove(path.c_str());
}

TEST(Experiment, MissionTimeString)
{
    MissionResult r;
    r.completed = false;
    EXPECT_EQ(missionTimeString(r), "DNF");
    r.completed = true;
    r.missionTime = 12.345;
    EXPECT_EQ(missionTimeString(r), "12.35s");
}

// ------------------------------------------------------------- morphology

TEST(Cosim, RoverMorphologyEndToEnd)
{
    // The artifact's "car vs drone" option: identical SoC/software
    // stack, ground-vehicle dynamics in the environment.
    MissionSpec s;
    s.world = "tunnel";
    s.vehicle = "rover";
    s.modelDepth = 14;
    s.velocity = 4.0;
    s.maxSimSeconds = 40.0;
    MissionResult r = runMission(s);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.collisions, 0u);
    EXPECT_GT(r.avgSpeed, 3.0);
    // Ground vehicle: never leaves the mast height.
    for (const TrajectorySample &ts : r.trajectory)
        EXPECT_NEAR(ts.position.z, 0.8, 1e-6);
}

TEST(Cosim, DynamicRuntimeReactsToPillar)
{
    // Section 5.3 in its sharpest form: a pillar ahead collapses the
    // depth reading, the Equation 5 deadline tightens, and the
    // dynamic runtime swaps in the small model with argmax.
    MissionSpec s;
    s.world = "tunnel";
    s.mode = runtime::RuntimeMode::Dynamic;
    s.modelDepth = 14;
    s.velocity = 3.0;
    s.maxSimSeconds = 12.0;
    CosimConfig cfg = s.toConfig();
    cfg.env.obstacles.push_back({14.0, 0.0, 0.5});
    CoSimulation sim(cfg);
    MissionResult r = sim.run();

    bool saw_small = false, saw_big = false;
    for (const runtime::InferenceRecord &rec : r.inferenceLog) {
        saw_small |= rec.modelDepth == 6 && rec.usedArgmax;
        saw_big |= rec.modelDepth == 14;
    }
    EXPECT_TRUE(saw_big);   // far from the pillar: big model
    EXPECT_TRUE(saw_small); // approaching the pillar: small + argmax
}

TEST(Cosim, SummaryReportContainsKeyStats)
{
    MissionSpec s = tunnelSpec();
    s.maxSimSeconds = 2.0;
    CosimConfig cfg = s.toConfig();
    CoSimulation sim(cfg);
    sim.run();
    std::ostringstream os;
    sim.printSummary(os);
    std::string out = os.str();
    for (const char *key :
         {"sim.periods", "sync.imageRequests", "bridge.rxPackets",
          "soc.totalCycles", "soc.accelActivityFactor",
          "soc.energyJoules", "app.inferences"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}
