/**
 * @file
 * Tests for the DNN stack: tensors, functional layer kernels, the
 * ResNet zoo, the execution engine's latency model (Table 3
 * properties), and the calibrated classifier (accuracy and
 * confidence-vs-capacity properties).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/classifier.hh"
#include "dnn/engine.hh"
#include "dnn/layers.hh"
#include "dnn/resnet.hh"
#include "dnn/tensor.hh"
#include "env/sensors.hh"
#include "env/world.hh"

using namespace rose;
using namespace rose::dnn;

// ---------------------------------------------------------------- Tensor

TEST(Tensor, ShapeAndAccess)
{
    Tensor t(2, 3, 4);
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2, 3), 5.0f);
    EXPECT_FLOAT_EQ(t.atPadded(1, 2, 3), 5.0f);
    EXPECT_FLOAT_EQ(t.atPadded(0, -1, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.atPadded(0, 0, 4), 0.0f);
    EXPECT_EQ(t.shapeString(), "(2,3,4)");
}

// ---------------------------------------------------------------- layers

TEST(Layers, ConvShapeAndMacs)
{
    LayerSpec c = makeConv("c", {3, 32, 32}, 16, 3, 1, 1);
    Shape o = c.outShape();
    EXPECT_EQ(o.c, 16);
    EXPECT_EQ(o.h, 32);
    EXPECT_EQ(o.w, 32);
    EXPECT_EQ(c.macs(), uint64_t(16) * 32 * 32 * 3 * 3 * 3);
    EXPECT_EQ(c.weightCount(), uint64_t(16) * 3 * 9 + 16);

    LayerSpec s2 = makeConv("s", {3, 32, 32}, 16, 3, 2, 1);
    EXPECT_EQ(s2.outShape().h, 16);
}

TEST(Layers, GemmDimsMatchIm2col)
{
    LayerSpec c = makeConv("c", {8, 10, 10}, 4, 3, 1, 1);
    int m, k, n;
    c.gemmDims(m, k, n);
    EXPECT_EQ(m, 100);    // output pixels
    EXPECT_EQ(k, 8 * 9);  // inC * k * k
    EXPECT_EQ(n, 4);      // out channels
    EXPECT_EQ(c.im2colBytes(), uint64_t(100) * 72 * 4);
}

TEST(Layers, ConvIdentityKernel)
{
    // A 1x1 identity kernel must reproduce the input (ReLU'd).
    LayerSpec spec = makeConv("id", {1, 4, 4}, 1, 1, 1, 0);
    Tensor in(1, 4, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            in.at(0, y, x) = float(y * 4 + x) - 6.0f;
    std::vector<float> w{1.0f};
    Tensor out = conv2d(spec, in, w, {}, /*relu=*/true);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_FLOAT_EQ(out.at(0, y, x),
                            std::max(0.0f, in.at(0, y, x)));
}

TEST(Layers, ConvAveragingKernel)
{
    // 3x3 box kernel over a constant image returns the constant
    // (interior) and less at borders (zero padding).
    LayerSpec spec = makeConv("box", {1, 5, 5}, 1, 3, 1, 1);
    Tensor in(1, 5, 5);
    in.fill(1.0f);
    std::vector<float> w(9, 1.0f / 9.0f);
    Tensor out = conv2d(spec, in, w, {}, false);
    EXPECT_NEAR(out.at(0, 2, 2), 1.0f, 1e-6);
    EXPECT_NEAR(out.at(0, 0, 0), 4.0f / 9.0f, 1e-6);
}

TEST(Layers, DenseComputesAffine)
{
    LayerSpec spec = makeDense("d", {1, 1, 3}, 2);
    Tensor in(1, 1, 3);
    in.data() = {1.0f, 2.0f, 3.0f};
    std::vector<float> w{1, 0, 0, 0, 1, 1}; // rows: [1,0,0],[0,1,1]
    std::vector<float> b{0.5f, -0.5f};
    std::vector<float> out = dense(spec, in, w, b);
    EXPECT_FLOAT_EQ(out[0], 1.5f);
    EXPECT_FLOAT_EQ(out[1], 4.5f);
}

TEST(Layers, MaxPoolPicksMax)
{
    LayerSpec spec = makeMaxPool("p", {1, 4, 4}, 2, 2);
    Tensor in(1, 4, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            in.at(0, y, x) = float(y * 4 + x);
    Tensor out = maxPool(spec, in);
    EXPECT_EQ(out.height(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 15.0f);
}

TEST(Layers, GlobalAvgPool)
{
    Tensor in(2, 2, 2);
    in.data() = {1, 2, 3, 4, 10, 10, 10, 10};
    Tensor out = globalAvgPool(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.5f);
    EXPECT_FLOAT_EQ(out.at(1, 0, 0), 10.0f);
}

TEST(Layers, ResidualAddRelu)
{
    Tensor a(1, 1, 2), b(1, 1, 2);
    a.data() = {1.0f, -3.0f};
    b.data() = {2.0f, 1.0f};
    Tensor out = residualAdd(a, b);
    EXPECT_FLOAT_EQ(out.data()[0], 3.0f);
    EXPECT_FLOAT_EQ(out.data()[1], 0.0f); // relu(-2)
}

TEST(Layers, SoftmaxNormalizedAndStable)
{
    std::vector<float> p = softmax({1000.0f, 1001.0f, 1002.0f});
    double sum = p[0] + p[1] + p[2];
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

// ------------------------------------------------------------------- zoo

TEST(Zoo, AllDepthsBuild)
{
    for (int d : resnetZoo()) {
        Model m = makeResNet(d);
        EXPECT_EQ(m.depth, d);
        EXPECT_GT(m.weightedLayers(), 0);
        EXPECT_GT(m.totalMacs(), 0u);
        // Dual heads present.
        int dense_heads = 0;
        for (const LayerSpec &l : m.layers)
            dense_heads += l.kind == LayerKind::Dense;
        EXPECT_EQ(dense_heads, 2) << m.name;
    }
}

TEST(Zoo, CapacityMonotone)
{
    uint64_t prev = 0;
    for (int d : resnetZoo()) {
        uint64_t macs = makeResNet(d).totalMacs();
        EXPECT_GT(macs, prev) << "depth " << d;
        prev = macs;
    }
}

TEST(Zoo, CalibrationTrendsMatchPaper)
{
    // Bigger nets: less estimate noise, lower temperature (sharper),
    // higher paper accuracy.
    double prev_sigma = 1e9, prev_temp = 1e9, prev_acc = 0.0;
    for (int d : resnetZoo()) {
        ClassifierCalib c = makeResNet(d).calib;
        EXPECT_LT(c.sigmaHeading, prev_sigma);
        EXPECT_LT(c.temperature, prev_temp);
        EXPECT_GT(c.paperAccuracy, prev_acc - 1e-9);
        prev_sigma = c.sigmaHeading;
        prev_temp = c.temperature;
        prev_acc = c.paperAccuracy;
    }
}

TEST(Zoo, ShapesChainCorrectly)
{
    // Every layer's input shape equals the previous producing layer's
    // output shape along the main path (residual adds keep shape).
    for (int d : resnetZoo()) {
        Model m = makeResNet(d);
        Shape cur{1, kDnnInputH, kDnnInputW};
        for (const LayerSpec &l : m.layers) {
            if (l.kind == LayerKind::Conv && l.kernel == 1)
                continue; // projection shortcut taps an earlier shape
            if (l.kind == LayerKind::Dense || l.kind == LayerKind::Softmax)
                continue; // heads fan out from the pooled vector
            EXPECT_EQ(l.in, cur) << m.name << " layer " << l.name;
            cur = l.outShape();
        }
    }
}

// ---------------------------------------------------------------- engine

TEST(Engine, Table3LatencyOrdering)
{
    ExecutionEngine boom(soc::configA());
    ExecutionEngine rocket(soc::configB());
    double prev_b = 0.0, prev_r = 0.0;
    for (int d : resnetZoo()) {
        Model m = makeResNet(d);
        double lb = boom.latencySeconds(m);
        double lr = rocket.latencySeconds(m);
        // Monotone in depth, Rocket strictly slower than BOOM.
        EXPECT_GT(lb, prev_b);
        EXPECT_GT(lr, prev_r);
        EXPECT_GT(lr, lb);
        prev_b = lb;
        prev_r = lr;
    }
}

TEST(Engine, Table3Magnitudes)
{
    // Shape targets from Table 3 (generous +-35% tolerance: we match
    // orderings and gaps, not the authors' testbed exactly).
    struct Row { int depth; double boom_ms; double rocket_ms; };
    const Row rows[] = {{6, 77, 101}, {11, 83, 108}, {14, 85, 125},
                        {18, 130, 185}, {34, 225, 300}};
    ExecutionEngine boom(soc::configA());
    ExecutionEngine rocket(soc::configB());
    for (const Row &r : rows) {
        Model m = makeResNet(r.depth);
        EXPECT_NEAR(boom.latencySeconds(m) * 1e3, r.boom_ms,
                    0.35 * r.boom_ms) << m.name;
        EXPECT_NEAR(rocket.latencySeconds(m) * 1e3, r.rocket_ms,
                    0.35 * r.rocket_ms) << m.name;
    }
}

TEST(Engine, CpuOnlyIsSecondsNotMilliseconds)
{
    // Section 5.1: the CPU-only config takes whole seconds per
    // inference (the paper observes ~6 s request-to-update latency).
    ExecutionEngine cpu(soc::configC());
    double lat = cpu.latencySeconds(makeResNet(14));
    EXPECT_GT(lat, 2.0);
    EXPECT_LT(lat, 12.0);
}

TEST(Engine, AccelCarriesMostComputeCycles)
{
    ExecutionEngine boom(soc::configA());
    InferenceSchedule s = boom.schedule(makeResNet(34));
    EXPECT_GT(s.accelCycles, 0u);
    EXPECT_EQ(s.totalCycles, s.accelCycles + s.hostCycles);
    // Actions replay to the same totals.
    Cycles sum = 0;
    for (const soc::Action &a : s.actions)
        sum += a.cycles;
    EXPECT_EQ(sum, s.totalCycles);
}

TEST(Engine, NoAccelScheduleHasNoAccelActions)
{
    ExecutionEngine cpu(soc::configC());
    InferenceSchedule s = cpu.schedule(makeResNet(6));
    EXPECT_EQ(s.accelCycles, 0u);
    for (const soc::Action &a : s.actions)
        EXPECT_NE(a.unit, soc::Unit::Accel);
}

// ------------------------------------------------------------ classifier

namespace {

struct AccuracyResult
{
    double angular;
    double lateral;
    double mean;
};

AccuracyResult
measureAccuracy(int depth, int samples)
{
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(41));
    env::Drone drone;
    Classifier cls(makeResNet(depth), Rng(43));
    EstimatorConfig ec;
    Rng rng(47);
    int oka = 0, okl = 0;
    for (int i = 0; i < samples; ++i) {
        double y = rng.uniform(-1.2, 1.2);
        double psi = rng.uniform(-0.35, 0.35);
        double x = rng.uniform(5.0, 45.0);
        drone.setPose({x, y, 1.5}, Quat::fromEuler(0, 0, psi));
        ClassifierOutput out = cls.infer(cam.render(world, drone));
        int ta = psi > ec.headingClassRad ? 0
                 : psi < -ec.headingClassRad ? 2 : 1;
        int tl = y > ec.offsetClassM ? 0 : y < -ec.offsetClassM ? 2 : 1;
        oka += out.angular.argmax() == ta;
        okl += out.lateral.argmax() == tl;
    }
    return {double(oka) / samples, double(okl) / samples,
            double(oka + okl) / (2.0 * samples)};
}

} // namespace

TEST(Classifier, PoseEstimateAccurate)
{
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(11));
    env::Drone drone;
    Rng rng(13);
    double se_h = 0.0, se_o = 0.0;
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        double y = rng.uniform(-1.0, 1.0);
        double psi = rng.uniform(-0.3, 0.3);
        drone.setPose({rng.uniform(5, 45), y, 1.5},
                      Quat::fromEuler(0, 0, psi));
        PoseEstimate est = estimatePose(cam.render(world, drone));
        ASSERT_TRUE(est.valid);
        se_h += (est.headingRad - psi) * (est.headingRad - psi);
        se_o += (est.offsetM - y) * (est.offsetM - y);
    }
    EXPECT_LT(std::sqrt(se_h / n), 0.05);  // heading RMSE < ~3 deg
    EXPECT_LT(std::sqrt(se_o / n), 0.15);  // offset RMSE < 15 cm
}

TEST(Classifier, ProbabilitiesNormalized)
{
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(17));
    env::Drone drone;
    drone.setPose({10, 0.5, 1.5}, Quat::fromEuler(0, 0, 0.1));
    Classifier cls(makeResNet(14), Rng(19));
    ClassifierOutput out = cls.infer(cam.render(world, drone));
    ASSERT_TRUE(out.valid);
    double sa = out.angular.probs[0] + out.angular.probs[1] +
                out.angular.probs[2];
    double sl = out.lateral.probs[0] + out.lateral.probs[1] +
                out.lateral.probs[2];
    EXPECT_NEAR(sa, 1.0, 1e-5);
    EXPECT_NEAR(sl, 1.0, 1e-5);
}

TEST(Classifier, CorrectClassOnClearPoses)
{
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(23));
    env::Drone drone;
    Classifier cls(makeResNet(34), Rng(29)); // most accurate model

    // Strongly yawed left, centered: angular head must say left.
    drone.setPose({10, 0.0, 1.5}, Quat::fromEuler(0, 0, 0.35));
    ClassifierOutput out = cls.infer(cam.render(world, drone));
    EXPECT_EQ(out.angular.argmax(), 0);

    // Strongly offset right, straight: lateral head must say right.
    drone.setPose({10, -1.1, 1.5}, Quat{});
    out = cls.infer(cam.render(world, drone));
    EXPECT_EQ(out.lateral.argmax(), 2);
}

TEST(Classifier, ConfidenceGrowsWithCapacity)
{
    // Section 5.2's mechanism: larger models produce sharper softmax
    // outputs on the same clear input.
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(31));
    env::Drone drone;
    drone.setPose({10, 0.0, 1.5}, Quat::fromEuler(0, 0, 0.3));
    env::Image img = cam.render(world, drone);

    double margin6 = 0.0, margin34 = 0.0;
    const int reps = 50;
    Classifier c6(makeResNet(6), Rng(37));
    Classifier c34(makeResNet(34), Rng(37));
    for (int i = 0; i < reps; ++i) {
        margin6 += std::abs(c6.infer(img).angular.margin());
        margin34 += std::abs(c34.infer(img).angular.margin());
    }
    EXPECT_GT(margin34 / reps, margin6 / reps + 0.2);
}

/** Table 3 accuracy column, parameterized over the zoo. */
class ClassifierAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(ClassifierAccuracy, MatchesPaperWithin5Points)
{
    int depth = GetParam();
    Model m = makeResNet(depth);
    AccuracyResult acc = measureAccuracy(depth, 400);
    EXPECT_NEAR(acc.mean, m.calib.paperAccuracy, 0.05)
        << m.name << " angular=" << acc.angular
        << " lateral=" << acc.lateral;
}

INSTANTIATE_TEST_SUITE_P(Zoo, ClassifierAccuracy,
                         ::testing::ValuesIn(resnetZoo()));

TEST(Classifier, AccuracyMonotoneInCapacity)
{
    double prev = 0.0;
    for (int d : resnetZoo()) {
        double acc = measureAccuracy(d, 400).mean;
        EXPECT_GT(acc, prev - 0.02) << "depth " << d;
        prev = std::max(prev, acc);
    }
}

TEST(Classifier, DegenerateImageFallsBackToUniform)
{
    Classifier cls(makeResNet(14), Rng(53));
    env::Image tiny(2, 2);
    ClassifierOutput out = cls.infer(tiny);
    EXPECT_FALSE(out.valid);
    EXPECT_NEAR(out.angular.probs[0], 1.0f / 3, 1e-6);
}

// ---------------------------------------------------------- forward pass

#include "dnn/forward.hh"

TEST(Forward, Im2colMatchesGemmDims)
{
    LayerSpec c = makeConv("c", {2, 6, 6}, 3, 3, 1, 1);
    Tensor in(2, 6, 6);
    for (size_t i = 0; i < in.data().size(); ++i)
        in.data()[i] = float(i) * 0.01f;
    std::vector<float> mat = im2col(c, in);
    int m, k, n;
    c.gemmDims(m, k, n);
    EXPECT_EQ(mat.size(), size_t(m) * k);
    // Spot check: row 0 (output pixel 0,0) column for ic=0,ky=1,kx=1
    // is input(0,0,0) since pad shifts by -1.
    EXPECT_FLOAT_EQ(mat[size_t(0) * k + (0 * 9 + 1 * 3 + 1)],
                    in.at(0, 0, 0));
    // Padded corners read zero.
    EXPECT_FLOAT_EQ(mat[0], 0.0f);
}

TEST(Forward, ConvViaGemmMatchesDirect)
{
    // The accelerator lowering (im2col + GEMM) must agree with the
    // direct convolution loops — the equivalence the latency model's
    // GEMM dimensions rest on.
    gemmini::Gemmini gem;
    LayerSpec spec = makeConv("c", {3, 10, 10}, 5, 3, 2, 1);
    Tensor in(3, 10, 10);
    Rng rng(91);
    for (float &v : in.data())
        v = float(rng.uniform(-1, 1));
    std::vector<float> wv(size_t(5) * 3 * 9);
    for (float &v : wv)
        v = float(rng.uniform(-0.3, 0.3));
    std::vector<float> bv{0.1f, -0.2f, 0.0f, 0.3f, -0.1f};

    Tensor direct = conv2d(spec, in, wv, bv, true);
    Tensor lowered = convViaGemm(spec, in, wv, bv, gem, true);
    ASSERT_EQ(direct.size(), lowered.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_NEAR(direct.data()[i], lowered.data()[i], 1e-3);
}

TEST(Forward, FullGraphProducesValidHeads)
{
    Model m = makeResNet(6);
    Weights w = initWeights(m, 7);
    Tensor in(1, kDnnInputH, kDnnInputW);
    Rng rng(11);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));
    ForwardResult r = runForward(m, w, in);
    double sa = r.angularProbs[0] + r.angularProbs[1] +
                r.angularProbs[2];
    double sl = r.lateralProbs[0] + r.lateralProbs[1] +
                r.lateralProbs[2];
    EXPECT_NEAR(sa, 1.0, 1e-5);
    EXPECT_NEAR(sl, 1.0, 1e-5);
    for (float p : r.angularProbs) {
        EXPECT_TRUE(std::isfinite(p));
        EXPECT_GE(p, 0.0f);
    }
}

TEST(Forward, GemmPathMatchesDirectPathEndToEnd)
{
    Model m = makeResNet(6);
    Weights w = initWeights(m, 21);
    Tensor in(1, kDnnInputH, kDnnInputW);
    Rng rng(23);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));
    ForwardResult a = runForward(m, w, in, /*use_gemm=*/false);
    ForwardResult b = runForward(m, w, in, /*use_gemm=*/true);
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(a.angularProbs[size_t(i)],
                    b.angularProbs[size_t(i)], 1e-3);
        EXPECT_NEAR(a.lateralProbs[size_t(i)],
                    b.lateralProbs[size_t(i)], 1e-3);
    }
}

TEST(Forward, DeterministicWeights)
{
    Model m = makeResNet(6);
    Weights a = initWeights(m, 5);
    Weights b = initWeights(m, 5);
    EXPECT_EQ(a.weights.at("stem"), b.weights.at("stem"));
    Weights c = initWeights(m, 6);
    EXPECT_NE(a.weights.at("stem"), c.weights.at("stem"));
}

TEST(Forward, ResidualGraphDepths)
{
    // Every zoo depth must execute its graph end to end (projection
    // shortcuts, transitions, dual heads).
    Tensor in(1, kDnnInputH, kDnnInputW);
    in.fill(0.5f);
    for (int d : {6, 11, 14}) {
        Model m = makeResNet(d);
        Weights w = initWeights(m, uint64_t(d));
        ForwardResult r = runForward(m, w, in);
        EXPECT_EQ(r.angularProbs.size(), 3u) << d;
    }
}

// ----------------------------------------- engine property sweep

/** Schedule invariants across the full (SoC x model) matrix. */
class EngineScheduleProperty
    : public ::testing::TestWithParam<std::tuple<char, int>>
{
};

TEST_P(EngineScheduleProperty, ActionInvariants)
{
    auto [soc_name, depth] = GetParam();
    soc::SocConfig sc = soc::configByName(std::string(1, soc_name));
    ExecutionEngine engine(sc);
    Model m = makeResNet(depth);
    InferenceSchedule s = engine.schedule(m);

    // Totals decompose exactly.
    Cycles sum = 0, accel = 0;
    for (const soc::Action &a : s.actions) {
        EXPECT_EQ(a.kind, soc::Action::Kind::Compute);
        EXPECT_GT(a.cycles, 0u);
        sum += a.cycles;
        if (a.unit == soc::Unit::Accel)
            accel += a.cycles;
    }
    EXPECT_EQ(sum, s.totalCycles);
    EXPECT_EQ(accel, s.accelCycles);
    EXPECT_EQ(s.totalCycles - accel, s.hostCycles);

    // Per-layer breakdown covers every weighted layer.
    EXPECT_EQ(int(s.layers.size()), int(m.layers.size()));
    for (const LayerTiming &lt : s.layers) {
        if (lt.onAccel) {
            EXPECT_GT(lt.accelCycles, 0u);
        } else {
            EXPECT_EQ(lt.accelCycles, 0u);
        }
    }

    // Config C never touches the accelerator.
    if (!sc.hasGemmini) {
        EXPECT_EQ(s.accelCycles, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineScheduleProperty,
    ::testing::Combine(::testing::Values('A', 'B', 'C'),
                       ::testing::ValuesIn(resnetZoo())));
