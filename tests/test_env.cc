/**
 * @file
 * Unit tests for the environment substrate: world geometry, raycasting,
 * quadrotor dynamics, sensors, and the EnvSim facade.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "env/envsim.hh"
#include "env/sensors.hh"
#include "env/world.hh"

using namespace rose;
using namespace rose::env;

// ----------------------------------------------------------------- World

TEST(World, TunnelDimensionsMatchPaper)
{
    // "a straight path 50 meters in length and 3.2 meters wide";
    // Figure 10: "boundaries are at y = +-1.6m".
    TunnelWorld t;
    EXPECT_DOUBLE_EQ(t.length(), 50.0);
    EXPECT_DOUBLE_EQ(t.halfWidth(25.0), 1.6);
    EXPECT_DOUBLE_EQ(t.centerY(10.0), 0.0);
}

TEST(World, SShapeDimensionsMatchPaper)
{
    // "an 'S' shaped trajectory of 80 meters in length", wider than
    // the tunnel; mission completes at x = 80.
    SShapeWorld s;
    EXPECT_DOUBLE_EQ(s.length(), 80.0);
    EXPECT_GT(s.halfWidth(0.0), 1.6);
    EXPECT_NEAR(s.centerY(0.0), 0.0, 1e-12);
    EXPECT_NEAR(s.centerY(80.0), 0.0, 1e-9);
    // The S swings both ways.
    EXPECT_GT(s.centerY(20.0), 2.0);
    EXPECT_LT(s.centerY(60.0), -2.0);
}

TEST(World, LateralOffsetSigned)
{
    TunnelWorld t;
    EXPECT_GT(t.lateralOffset({5, 0.5, 1}), 0.0);
    EXPECT_LT(t.lateralOffset({5, -0.5, 1}), 0.0);
}

TEST(World, CollisionDetection)
{
    TunnelWorld t;
    EXPECT_FALSE(t.collides({5, 0, 1.5}, 0.25));
    EXPECT_TRUE(t.collides({5, 1.5, 1.5}, 0.25));  // wall graze
    EXPECT_TRUE(t.collides({5, -1.6, 1.5}, 0.25)); // in the wall
    EXPECT_TRUE(t.collides({5, 0, -0.1}, 0.25));   // under the floor
    EXPECT_TRUE(t.collides({-3, 0, 1.5}, 0.25));   // behind the start
}

TEST(World, MissionCompletion)
{
    TunnelWorld t;
    EXPECT_FALSE(t.missionComplete({49.9, 0, 1.5}));
    EXPECT_TRUE(t.missionComplete({50.0, 0, 1.5}));
}

TEST(World, SlopeMatchesNumericalDerivative)
{
    SShapeWorld s;
    for (double x : {1.0, 13.0, 37.0, 61.0, 79.0}) {
        double h = 1e-5;
        double num = (s.centerY(x + h) - s.centerY(x - h)) / (2 * h);
        EXPECT_NEAR(s.centerSlope(x), num, 1e-6);
    }
}

TEST(World, FactoryNames)
{
    EXPECT_EQ(makeWorld("tunnel")->name(), "tunnel");
    EXPECT_EQ(makeWorld("s-shape")->name(), "s-shape");
    EXPECT_EQ(makeWorld("sshape")->name(), "s-shape");
}

// --------------------------------------------------------------- Raycast

TEST(Raycast, PerpendicularWallDistance)
{
    TunnelWorld t;
    // Looking straight left (+y) from the centerline: wall at 1.6 m.
    RayHit hit = t.raycast({10, 0, 1.5}, kPi / 2);
    ASSERT_TRUE(hit.hit);
    EXPECT_NEAR(hit.distance, 1.6, 0.01);
    EXPECT_EQ(hit.side, 1);
    // Looking right (-y): also 1.6 m away but the other wall.
    hit = t.raycast({10, 0, 1.5}, -kPi / 2);
    ASSERT_TRUE(hit.hit);
    EXPECT_NEAR(hit.distance, 1.6, 0.01);
    EXPECT_EQ(hit.side, -1);
}

TEST(Raycast, AngledDistanceGeometry)
{
    TunnelWorld t;
    // At 30 degrees off-axis, the wall distance is halfWidth/sin(30).
    RayHit hit = t.raycast({10, 0, 1.5}, deg2rad(30.0));
    ASSERT_TRUE(hit.hit);
    EXPECT_NEAR(hit.distance, 1.6 / std::sin(deg2rad(30.0)), 0.02);
}

TEST(Raycast, DownCorridorNoHitWithinRange)
{
    TunnelWorld t;
    RayHit hit = t.raycast({10, 0, 1.5}, 0.0, 30.0);
    EXPECT_FALSE(hit.hit);
    EXPECT_DOUBLE_EQ(hit.distance, 30.0);
}

TEST(Raycast, StartInsideWallReportsImmediateHit)
{
    TunnelWorld t;
    RayHit hit = t.raycast({10, 1.7, 1.5}, 0.0);
    EXPECT_TRUE(hit.hit);
    EXPECT_DOUBLE_EQ(hit.distance, 0.0);
}

TEST(Raycast, SShapeCurvedWall)
{
    SShapeWorld s;
    // Looking straight down +x from the start, the curving right wall
    // must intercept the ray eventually.
    RayHit hit = s.raycast({0, 0, 1.5}, 0.0, 60.0);
    EXPECT_TRUE(hit.hit);
    EXPECT_GT(hit.distance, 1.5);
    EXPECT_LT(hit.distance, 50.0);
}

// ----------------------------------------------------------------- Drone

TEST(Drone, FreeFallWithoutThrust)
{
    Drone d;
    d.setPose({0, 0, 10}, Quat{});
    for (int i = 0; i < 600; ++i)
        d.step(1.0 / 600.0);
    // ~1 s of free fall: z drops by ~4.9 m (slightly less with drag).
    EXPECT_LT(d.position().z, 6.0);
    EXPECT_GT(d.position().z, 4.5);
    EXPECT_LT(d.velocity().z, -7.5);
}

TEST(Drone, HoverThrustBalancesGravity)
{
    Drone d;
    DroneParams p;
    d.setPose({0, 0, 5}, Quat{});
    double hover = p.massKg * p.gravity / 4.0;
    d.setMotorCommand({hover, hover, hover, hover});
    for (int i = 0; i < 1200; ++i)
        d.step(1.0 / 600.0);
    // Open-loop hover: the spin-up lag costs some altitude, but there
    // must be no sustained acceleration once thrust settles.
    EXPECT_NEAR(d.position().z, 5.0, 0.5);
    EXPECT_GT(d.velocity().z, -0.5);
}

TEST(Drone, DifferentialThrustRolls)
{
    Drone d;
    d.setPose({0, 0, 5}, Quat{});
    double hover = 9.81 / 4.0;
    // Raise the left-side motors (0 FL, 3 RL at +y): positive torque
    // about +x, i.e. positive roll (tips the body toward -y).
    d.setMotorCommand({hover + 0.2, hover - 0.2, hover - 0.2,
                       hover + 0.2});
    for (int i = 0; i < 120; ++i)
        d.step(1.0 / 600.0);
    EXPECT_GT(d.bodyRates().x, 0.05);
    EXPECT_GT(d.attitude().roll(), 0.0);
}

TEST(Drone, YawFromCounterTorque)
{
    Drone d;
    d.setPose({0, 0, 5}, Quat{});
    double hover = 9.81 / 4.0;
    // CCW motors (0, 2) produce +z torque.
    d.setMotorCommand({hover + 0.3, hover - 0.3, hover + 0.3,
                       hover - 0.3});
    for (int i = 0; i < 300; ++i)
        d.step(1.0 / 600.0);
    EXPECT_GT(d.bodyRates().z, 0.05);
}

TEST(Drone, GroundClampsDescent)
{
    Drone d;
    d.setPose({0, 0, 0.05}, Quat{});
    for (int i = 0; i < 600; ++i)
        d.step(1.0 / 600.0);
    EXPECT_DOUBLE_EQ(d.position().z, 0.0);
    EXPECT_GE(d.velocity().z, 0.0);
}

TEST(Drone, MotorLagSmoothsStep)
{
    Drone d;
    d.setPose({0, 0, 5}, Quat{});
    d.setMotorCommand({5, 5, 5, 5});
    d.step(1.0 / 600.0);
    // After one substep the lagged thrust is well below the command.
    EXPECT_LT(d.motorThrust()[0], 1.0);
    for (int i = 0; i < 600; ++i)
        d.step(1.0 / 600.0);
    EXPECT_NEAR(d.motorThrust()[0], 5.0, 0.05);
}

TEST(Drone, WallCollisionResolution)
{
    Drone d;
    d.setPose({5, 1.5, 1.5}, Quat{});
    // Moving into the left wall (positive y).
    d.setMotorCommand({9.81 / 4, 9.81 / 4, 9.81 / 4, 9.81 / 4});
    d.step(1.0 / 600.0);
    Vec3 before_pos{5, 1.3, 1.5};
    double impact =
        d.resolveWallCollision(before_pos, Vec3{0, -1, 0});
    EXPECT_DOUBLE_EQ(d.position().y, 1.3);
    EXPECT_GE(impact, 0.0);
}

// --------------------------------------------------------------- Sensors

TEST(Imu, GravityAtRest)
{
    Drone d;
    d.setPose({0, 0, 1.5}, Quat{});
    double hover = 9.81 / 4.0;
    d.setMotorCommand({hover, hover, hover, hover});
    for (int i = 0; i < 1200; ++i)
        d.step(1.0 / 600.0);
    Imu imu(ImuConfig{}, Rng(3));
    ImuSample s = imu.sample(d, 2.0);
    // At hover the specific force reads +g on body z.
    EXPECT_NEAR(s.accel.z, 9.81, 0.5);
    EXPECT_NEAR(s.accel.x, 0.0, 0.3);
    EXPECT_NEAR(s.gyro.norm(), 0.0, 0.1);
    EXPECT_DOUBLE_EQ(s.timestamp, 2.0);
}

TEST(Imu, GyroTracksBodyRates)
{
    Drone d;
    d.setPose({0, 0, 5}, Quat{});
    double hover = 9.81 / 4.0;
    d.setMotorCommand({hover + 0.3, hover - 0.3, hover + 0.3,
                       hover - 0.3});
    for (int i = 0; i < 300; ++i)
        d.step(1.0 / 600.0);
    Imu imu(ImuConfig{}, Rng(5));
    ImuSample s = imu.sample(d, 0.5);
    EXPECT_NEAR(s.gyro.z, d.bodyRates().z, 0.05);
}

TEST(Camera, ImageDimensionsAndRange)
{
    TunnelWorld w;
    Drone d;
    d.setPose({5, 0, 1.5}, Quat{});
    Camera cam(CameraConfig{}, Rng(7));
    Image img = cam.render(w, d);
    EXPECT_EQ(img.width, 64);
    EXPECT_EQ(img.height, 48);
    ASSERT_EQ(img.pixels.size(), size_t(64) * 48);
    for (float v : img.pixels) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Camera, OffsetSkewsBrightness)
{
    // Near the left wall, left-side columns see a much closer (brighter)
    // wall than right-side columns; the classifier features rely on
    // this asymmetry carrying pose information.
    TunnelWorld w;
    Camera cam(CameraConfig{}, Rng(9));

    Drone d;
    d.setPose({5, 1.0, 1.5}, Quat{}); // near left wall
    Image img = cam.render(w, d);

    auto col_mean = [&](int c) {
        double s = 0;
        for (int r = 0; r < img.height; ++r)
            s += img.at(r, c);
        return s / img.height;
    };
    double left = (col_mean(2) + col_mean(6) + col_mean(10)) / 3;
    double right = (col_mean(img.width - 3) + col_mean(img.width - 7) +
                    col_mean(img.width - 11)) / 3;
    EXPECT_GT(left, right + 0.02);
}

TEST(Camera, DeterministicGivenSeed)
{
    TunnelWorld w;
    Drone d;
    d.setPose({5, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    Camera a(CameraConfig{}, Rng(11));
    Camera b(CameraConfig{}, Rng(11));
    Image ia = a.render(w, d);
    Image ib = b.render(w, d);
    EXPECT_EQ(ia.pixels, ib.pixels);
}

TEST(Depth, ReadsForwardDistance)
{
    TunnelWorld w;
    Drone d;
    // Heading 90 degrees left: wall 1.6 m away.
    d.setPose({10, 0, 1.5}, Quat::fromEuler(0, 0, kPi / 2));
    DepthSensor ds(30.0, 0.0, Rng(13));
    EXPECT_NEAR(ds.sample(w, d), 1.6, 0.02);
    // Heading down the corridor: max range.
    d.setPose({10, 0, 1.5}, Quat{});
    EXPECT_NEAR(ds.sample(w, d), 30.0, 0.01);
}

// ---------------------------------------------------------------- EnvSim

TEST(EnvSim, FrameSteppingAdvancesTime)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    sim.stepFrames(60);
    EXPECT_EQ(sim.frameCount(), 60u);
    EXPECT_NEAR(sim.simTime(), 1.0, 1e-9);
}

TEST(EnvSim, TakesOffAndHolds)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    sim.stepFrames(6 * 60);
    EXPECT_NEAR(sim.kinematics().position.z, cfg.cruiseAltitude, 0.1);
    EXPECT_FALSE(sim.collisionInfo().hasCollided);
}

TEST(EnvSim, CommandedForwardFlightProgresses)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    sim.stepFrames(3 * 60); // take off
    sim.commandVelocity(3.0, 0.0, 0.0);
    sim.stepFrames(5 * 60);
    EXPECT_GT(sim.kinematics().position.x, 10.0);
    EXPECT_FALSE(sim.collisionInfo().hasCollided);
    EXPECT_NEAR(sim.lateralOffset(), 0.0, 0.4);
}

TEST(EnvSim, DriftIntoWallCollides)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    sim.stepFrames(3 * 60);
    sim.commandVelocity(0.0, 2.0, 0.0); // fly left into the wall
    sim.stepFrames(4 * 60);
    EXPECT_TRUE(sim.collisionInfo().hasCollided);
    EXPECT_GE(sim.collisionInfo().count, 1u);
    // Collision resolution keeps the drone inside the corridor.
    EXPECT_LT(std::abs(sim.lateralOffset()), 1.6);
}

TEST(EnvSim, AngledStartHeadsTowardWall)
{
    // Figure 10 setup: starting at 20 degrees, an uncorrected drone
    // reaches the wall in ~1.6/sin(20) = 4.7 m of travel.
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    cfg.initialYawDeg = 20.0;
    EnvSim sim(cfg);
    sim.stepFrames(3 * 60);
    sim.commandVelocity(3.0, 0.0, 0.0);
    sim.stepFrames(4 * 60);
    EXPECT_TRUE(sim.collisionInfo().hasCollided);
}

TEST(EnvSim, MissionCompletion)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    cfg.initialPosition = {48.0, 0.0, 0.4};
    EnvSim sim(cfg);
    sim.stepFrames(3 * 60);
    sim.commandVelocity(3.0, 0.0, 0.0);
    sim.stepFrames(3 * 60);
    EXPECT_TRUE(sim.missionComplete());
}

TEST(EnvSim, DeterministicWithSameSeed)
{
    EnvConfig cfg;
    cfg.seed = 77;
    auto run = [&]() {
        EnvSim sim(cfg);
        sim.stepFrames(60);
        sim.commandVelocity(2.0, 0.0, 0.1);
        sim.stepFrames(120);
        return sim.kinematics().position;
    };
    Vec3 a = run();
    Vec3 b = run();
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
    EXPECT_DOUBLE_EQ(a.z, b.z);
}

TEST(EnvSim, SeedsChangeTurbulence)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.3;
    cfg.seed = 1;
    EnvSim a(cfg);
    cfg.seed = 2;
    EnvSim b(cfg);
    a.stepFrames(300);
    b.stepFrames(300);
    EXPECT_NE(a.kinematics().position.y, b.kinematics().position.y);
}

TEST(EnvSim, HeadingErrorTracksYaw)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    cfg.initialYawDeg = 15.0;
    EnvSim sim(cfg);
    EXPECT_NEAR(sim.headingError(), deg2rad(15.0), 1e-6);
}

// -------------------------------------------------------------- obstacles

TEST(Obstacles, RaycastHitsPillar)
{
    TunnelWorld t;
    t.addObstacle({15.0, 0.0, 0.5});
    // Looking straight down the corridor from x=10: pillar face at
    // 15 - 0.5 - 10 = 4.5 m.
    RayHit hit = t.raycast({10, 0, 1.5}, 0.0, 30.0);
    ASSERT_TRUE(hit.hit);
    EXPECT_NEAR(hit.distance, 4.5, 0.01);
    // A ray aimed well past the pillar still reaches the max range.
    RayHit miss = t.raycast({10, 1.2, 1.5}, 0.0, 30.0);
    EXPECT_NEAR(miss.distance, 30.0, 0.01);
}

TEST(Obstacles, PillarNearerThanWallWins)
{
    TunnelWorld t;
    t.addObstacle({10.0, 0.8, 0.3});
    // Looking left from the center at x=10: pillar face at 0.5 m,
    // wall at 1.6 m.
    RayHit hit = t.raycast({10, 0, 1.5}, kPi / 2);
    ASSERT_TRUE(hit.hit);
    EXPECT_NEAR(hit.distance, 0.5, 0.01);
}

TEST(Obstacles, CollisionDetection)
{
    TunnelWorld t;
    t.addObstacle({20.0, 0.0, 0.5});
    EXPECT_TRUE(t.collides({20.5, 0.0, 1.5}, 0.25));  // overlapping
    EXPECT_FALSE(t.collides({21.5, 0.0, 1.5}, 0.25)); // clear
}

TEST(Obstacles, DepthSensorSeesPillar)
{
    TunnelWorld t;
    t.addObstacle({15.0, 0.0, 0.5});
    Drone d;
    d.setPose({10, 0, 1.5}, Quat{});
    DepthSensor ds(30.0, 0.0, Rng(71));
    EXPECT_NEAR(ds.sample(t, d), 4.5, 0.05);
}

TEST(Obstacles, CameraRendersPillar)
{
    // Center columns see the nearby pillar (bright, close); edge
    // columns see the distant corridor. The wall band from a close
    // hit is much taller, so center columns carry more wall shading.
    TunnelWorld clear_world;
    TunnelWorld blocked;
    blocked.addObstacle({12.0, 0.0, 0.5});
    Drone d;
    d.setPose({10, 0, 1.5}, Quat{});
    Camera cam_a(CameraConfig{}, Rng(73));
    Camera cam_b(CameraConfig{}, Rng(73));
    Image a = cam_a.render(clear_world, d);
    Image b = cam_b.render(blocked, d);
    int mid = a.width / 2;
    double diff = 0.0;
    for (int r = 0; r < a.height; ++r)
        diff += std::abs(a.at(r, mid) - b.at(r, mid));
    EXPECT_GT(diff, 1.0); // the pillar visibly changes the image
}

TEST(Obstacles, EnvSimResolvesPillarCollision)
{
    EnvConfig cfg;
    cfg.turbulenceForceStd = 0.0;
    cfg.obstacles.push_back({8.0, 0.0, 0.5});
    EnvSim sim(cfg);
    sim.stepFrames(3 * 60);
    sim.commandVelocity(3.0, 0.0, 0.0); // straight into the pillar
    sim.stepFrames(4 * 60);
    EXPECT_TRUE(sim.collisionInfo().hasCollided);
    // Resolution pushed the vehicle back outside the pillar.
    Vec3 p = sim.kinematics().position;
    double dx = p.x - 8.0, dy = p.y - 0.0;
    EXPECT_GE(std::sqrt(dx * dx + dy * dy), 0.5 + 0.25 - 0.02);
}

// ------------------------------------------ cross-world property sweep

/** Invariants every corridor world must satisfy. */
class WorldProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorldProperty, GeometryInvariants)
{
    auto world = makeWorld(GetParam());
    EXPECT_GT(world->length(), 10.0);

    for (double x = 0.5; x < world->length(); x += 1.7) {
        // Positive width everywhere.
        EXPECT_GT(world->halfWidth(x), 0.5) << x;
        // Slope consistent with the centerline derivative.
        double h = 1e-4;
        double num =
            (world->centerY(x + h) - world->centerY(x - h)) / (2 * h);
        EXPECT_NEAR(world->centerSlope(x), num, 0.02) << x;
        // The centerline itself never collides.
        Vec3 center{x, world->centerY(x), 1.5};
        EXPECT_FALSE(world->collides(center, 0.25)) << x;
        // A point beyond the wall does.
        Vec3 outside{x, world->centerY(x) + world->halfWidth(x) + 0.3,
                     1.5};
        EXPECT_TRUE(world->collides(outside, 0.25)) << x;
        // Raycasts from the centerline hit the walls symmetrically
        // (within the tangent correction).
        double tangent = world->tangentAngle(x);
        RayHit left = world->raycast(center, tangent + kPi / 2);
        RayHit right = world->raycast(center, tangent - kPi / 2);
        ASSERT_TRUE(left.hit) << x;
        ASSERT_TRUE(right.hit) << x;
        EXPECT_NEAR(left.distance, right.distance,
                    0.35 * world->halfWidth(x)) << x;
    }
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldProperty,
                         ::testing::Values("tunnel", "s-shape",
                                           "zigzag"));

TEST(ZigzagWorld, AlternatesDirection)
{
    ZigzagWorld z;
    // First segment climbs, second descends.
    EXPECT_GT(z.centerSlope(7.0), 0.2);
    EXPECT_LT(z.centerSlope(22.0), -0.2);
    EXPECT_GT(z.centerSlope(37.0), 0.2);
    // Continuous at the corners (rounded).
    double before = z.centerSlope(14.9);
    double after = z.centerSlope(15.1);
    EXPECT_LT(std::abs(before - after), 0.1);
}
