/**
 * @file
 * Tests for the fault-injecting transport decorator and for closed-loop
 * graceful degradation: a full CoSimulation mission under packet loss
 * must finish (or fail with a clear TransportError), never deadlock.
 */

#include <gtest/gtest.h>

#include <set>

#include "bridge/fault_inject.hh"
#include "bridge/transport.hh"
#include "core/experiment.hh"

using namespace rose;
using namespace rose::bridge;

namespace {

/** Wrap one end of an in-process pair with fault injection. */
struct FaultHarness
{
    std::unique_ptr<Transport> cleanEnd;
    std::unique_ptr<FaultInjectTransport> faulty;

    explicit FaultHarness(const FaultConfig &cfg)
    {
        auto [a, b] = makeInProcPair();
        cleanEnd = std::move(a);
        faulty = std::make_unique<FaultInjectTransport>(std::move(b),
                                                        cfg);
    }
};

} // namespace

TEST(FaultInject, ZeroProbabilitiesAreTransparent)
{
    FaultConfig cfg;
    FaultHarness h(cfg);
    for (int i = 0; i < 100; ++i)
        h.faulty->send(encodeDepthResp(double(i)));
    Packet p;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(h.cleanEnd->recv(p));
        EXPECT_DOUBLE_EQ(decodeDepthResp(p), double(i));
    }
    EXPECT_FALSE(h.cleanEnd->recv(p));
    EXPECT_EQ(h.faulty->stats().dropped, 0u);
    EXPECT_EQ(h.faulty->stats().sent, 100u);
}

TEST(FaultInject, DropsAtRoughlyConfiguredRate)
{
    FaultConfig cfg;
    cfg.dropProb = 0.3;
    cfg.seed = 99;
    FaultHarness h(cfg);
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        h.faulty->send(encodeDepthResp(double(i)));

    Packet p;
    int delivered = 0;
    while (h.cleanEnd->recv(p))
        ++delivered;
    const FaultStats &fs = h.faulty->stats();
    EXPECT_EQ(uint64_t(delivered), fs.sent);
    EXPECT_EQ(fs.sent + fs.dropped, uint64_t(n));
    // 3-sigma band around the 30% drop rate.
    EXPECT_NEAR(double(fs.dropped) / n, 0.3, 0.031);
}

TEST(FaultInject, SyncPacketsProtectedByDefault)
{
    FaultConfig cfg;
    cfg.dropProb = 1.0; // drop every eligible packet
    FaultHarness h(cfg);
    h.faulty->send(encodeSyncGrant(1000));
    h.faulty->send(encodeDepthResp(1.0));
    h.faulty->send(encodeSyncDone(1000));
    h.faulty->send(encodeCfgStepSize(500));

    Packet p;
    std::vector<PacketType> got;
    while (h.cleanEnd->recv(p))
        got.push_back(p.type);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], PacketType::SyncGrant);
    EXPECT_EQ(got[1], PacketType::SyncDone);
    EXPECT_EQ(got[2], PacketType::CfgStepSize);
    EXPECT_EQ(h.faulty->stats().dropped, 1u);
}

TEST(FaultInject, UnprotectedSyncPacketsAreEligible)
{
    FaultConfig cfg;
    cfg.dropProb = 1.0;
    cfg.protectSyncPackets = false;
    FaultHarness h(cfg);
    h.faulty->send(encodeSyncGrant(1000));
    Packet p;
    EXPECT_FALSE(h.cleanEnd->recv(p));
    EXPECT_EQ(h.faulty->stats().dropped, 1u);
}

TEST(FaultInject, CorruptionPreservesFraming)
{
    FaultConfig cfg;
    cfg.corruptProb = 1.0;
    FaultHarness h(cfg);
    Packet ref = encodeVelocityCmd({1.0, 2.0, 3.0});
    const int n = 50;
    for (int i = 0; i < n; ++i)
        h.faulty->send(ref);

    Packet p;
    int received = 0, differing = 0;
    while (h.cleanEnd->recv(p)) {
        ++received;
        EXPECT_EQ(p.type, ref.type);
        ASSERT_EQ(p.payload.size(), ref.payload.size());
        if (p.payload != ref.payload)
            ++differing;
    }
    EXPECT_EQ(received, n);
    // Every packet had exactly one bit flipped.
    EXPECT_EQ(differing, n);
    EXPECT_EQ(h.faulty->stats().corrupted, uint64_t(n));
}

TEST(FaultInject, DelayedPacketsEventuallyDeliverInOrder)
{
    FaultConfig cfg;
    cfg.delayProb = 1.0;
    cfg.delayOpsMin = 1;
    cfg.delayOpsMax = 3;
    FaultHarness h(cfg);
    const int n = 20;
    for (int i = 0; i < n; ++i)
        h.faulty->send(encodeDepthResp(double(i)));

    // Each further operation advances the decorator's op clock and
    // releases due packets; everything must surface eventually.
    Packet p;
    std::vector<double> got;
    for (int spin = 0; spin < 200 && int(got.size()) < n; ++spin) {
        h.faulty->send(encodeSyncGrant(1)); // advances the op clock
        while (h.cleanEnd->recv(p)) {
            if (p.type == PacketType::DepthResp)
                got.push_back(decodeDepthResp(p));
        }
    }
    ASSERT_EQ(int(got.size()), n);
    // Delay is FIFO: relative order of delayed packets is preserved.
    for (int i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(got[i], double(i));
    EXPECT_EQ(h.faulty->stats().delayed, uint64_t(n));
}

TEST(FaultInject, ReorderSwapsAdjacentPackets)
{
    FaultConfig cfg;
    cfg.reorderProb = 1.0;
    cfg.seed = 7;
    FaultHarness h(cfg);
    h.faulty->send(encodeDepthResp(1.0)); // held
    h.faulty->send(encodeDepthResp(2.0)); // overtakes, releases held

    Packet p;
    ASSERT_TRUE(h.cleanEnd->recv(p));
    EXPECT_DOUBLE_EQ(decodeDepthResp(p), 2.0);
    ASSERT_TRUE(h.cleanEnd->recv(p));
    EXPECT_DOUBLE_EQ(decodeDepthResp(p), 1.0);
    EXPECT_EQ(h.faulty->stats().reordered, 1u);
}

TEST(FaultInject, ReceiveSideFaultsApply)
{
    // Faults must also hit inbound traffic: wrap the receiving end.
    FaultConfig cfg;
    cfg.dropProb = 1.0;
    auto [a, b] = makeInProcPair();
    FaultInjectTransport faulty(std::move(b), cfg);
    a->send(encodeDepthResp(1.0));
    a->send(encodeSyncDone(5));
    Packet p;
    // The data packet is dropped on receive; the protected SyncDone
    // still arrives.
    ASSERT_TRUE(faulty.recv(p));
    EXPECT_EQ(p.type, PacketType::SyncDone);
    EXPECT_FALSE(faulty.recv(p));
    EXPECT_EQ(faulty.stats().dropped, 1u);
}

TEST(FaultInject, DeterministicUnderSeed)
{
    auto run = [](uint64_t seed) {
        FaultConfig cfg;
        cfg.dropProb = 0.2;
        cfg.delayProb = 0.1;
        cfg.seed = seed;
        FaultHarness h(cfg);
        for (int i = 0; i < 300; ++i)
            h.faulty->send(encodeDepthResp(double(i)));
        Packet p;
        std::vector<double> got;
        while (h.cleanEnd->recv(p))
            got.push_back(decodeDepthResp(p));
        return got;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

// --------------------------------------- closed-loop graceful degradation

namespace {

core::MissionSpec
shortTunnelSpec()
{
    core::MissionSpec s;
    s.world = "tunnel";
    s.socName = "A";
    s.modelDepth = 14;
    s.velocity = 3.0;
    s.maxSimSeconds = 40.0;
    return s;
}

} // namespace

TEST(FaultMission, CompletesUnderFivePercentDrop)
{
    // Acceptance: a full mission with >= 5% packet drop must complete
    // (or fail with a clear TransportError) — graceful degradation,
    // never a deadlock. With the sensor-retry timeout the tunnel
    // mission is expected to still finish.
    core::CosimConfig cfg = shortTunnelSpec().toConfig();
    cfg.faults.enabled = true;
    cfg.faults.dropProb = 0.05;
    cfg.faults.seed = 2024;

    core::CoSimulation sim(cfg);
    core::MissionResult r = sim.run();

    ASSERT_NE(sim.faultStats(), nullptr);
    EXPECT_GT(sim.faultStats()->dropped, 0u) << "faults never fired";
    if (r.transportError)
        FAIL() << "unexpected transport error: "
               << r.transportErrorMessage;
    EXPECT_TRUE(r.completed)
        << "mission should survive 5% drop via sensor retries";
    EXPECT_GT(sim.app().sensorRetries(), 0u);
}

TEST(FaultMission, HeavyLossDegradesButNeverDeadlocks)
{
    core::CosimConfig cfg = shortTunnelSpec().toConfig();
    cfg.maxSimSeconds = 15.0;
    cfg.faults.enabled = true;
    cfg.faults.dropProb = 0.35;
    cfg.faults.corruptProb = 0.0;
    cfg.faults.delayProb = 0.1;
    cfg.faults.seed = 7;

    core::CoSimulation sim(cfg);
    core::MissionResult r = sim.run();
    // Whatever the outcome, the run terminates and reports: either the
    // mission ran to its time limit / completion, or a transport error
    // carries a diagnostic.
    if (r.transportError) {
        EXPECT_FALSE(r.transportErrorMessage.empty());
    } else {
        EXPECT_GT(r.missionTime, 0.0);
    }
}

TEST(FaultMission, SensorTimeoutDefaultsWhenFaultsEnabled)
{
    core::CosimConfig cfg = shortTunnelSpec().toConfig();
    cfg.faults.enabled = true;
    cfg.faults.dropProb = 0.01;
    core::CoSimulation sim(cfg);
    EXPECT_EQ(sim.app().config().sensorTimeoutCycles,
              3 * cfg.sync.cyclesPerSync);
}
