/**
 * @file
 * Unit tests for the PID building block and closed-loop tests of the
 * cascaded flight controller driving the quadrotor dynamics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "env/drone.hh"
#include "flight/controller.hh"
#include "flight/pid.hh"

using namespace rose;
using namespace rose::flight;

// ------------------------------------------------------------------- PID

TEST(Pid, ProportionalOnly)
{
    Pid p({/*kp=*/2.0, 0, 0, 0, 0});
    EXPECT_DOUBLE_EQ(p.update(1.5, 0.01), 3.0);
    EXPECT_DOUBLE_EQ(p.update(-1.0, 0.01), -2.0);
}

TEST(Pid, IntegralAccumulates)
{
    Pid p({0, /*ki=*/1.0, 0, 0, 0});
    double out = 0;
    for (int i = 0; i < 100; ++i)
        out = p.update(1.0, 0.01);
    EXPECT_NEAR(out, 1.0, 1e-9);
    EXPECT_NEAR(p.integral(), 1.0, 1e-9);
}

TEST(Pid, DerivativeOnChange)
{
    Pid p({0, 0, /*kd=*/1.0, 0, 0});
    // First update has no derivative history.
    EXPECT_DOUBLE_EQ(p.update(1.0, 0.1), 0.0);
    // Error rises by 1 over dt = 0.1 -> derivative 10.
    EXPECT_NEAR(p.update(2.0, 0.1), 10.0, 1e-9);
}

TEST(Pid, OutputSaturation)
{
    Pid p({/*kp=*/100.0, 0, 0, /*outputLimit=*/5.0, 0});
    EXPECT_DOUBLE_EQ(p.update(1.0, 0.01), 5.0);
    EXPECT_DOUBLE_EQ(p.update(-1.0, 0.01), -5.0);
}

TEST(Pid, AntiWindupClamp)
{
    Pid p({0, /*ki=*/1.0, 0, 0, /*integralLimit=*/0.5});
    for (int i = 0; i < 1000; ++i)
        p.update(10.0, 0.01);
    EXPECT_LE(p.integral(), 0.5);
}

TEST(Pid, ResetClearsState)
{
    Pid p({1.0, 1.0, 1.0, 0, 0});
    p.update(1.0, 0.01);
    p.update(2.0, 0.01);
    p.reset();
    EXPECT_DOUBLE_EQ(p.integral(), 0.0);
    // After reset the derivative term must not fire on first update.
    Pid q({0, 0, 1.0, 0, 0});
    q.update(5.0, 0.01);
    q.reset();
    EXPECT_DOUBLE_EQ(q.update(1.0, 0.01), 0.0);
}

// --------------------------------------------- closed-loop vehicle tests

namespace {

struct Loop
{
    env::Drone drone;
    CascadedController ctrl;

    Loop()
        : drone(env::DroneParams{}),
          ctrl(VehicleParams{}, ControllerConfig{})
    {
        drone.setPose({0, 0, 1.5}, Quat{});
    }

    void
    run(double seconds, double dt = 1.0 / 600.0)
    {
        int steps = int(seconds / dt);
        for (int i = 0; i < steps; ++i) {
            drone.setMotorCommand(ctrl.update(drone.state(), dt));
            drone.step(dt);
        }
    }
};

} // namespace

TEST(Controller, HoverHoldsAltitude)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(8.0);
    EXPECT_NEAR(loop.drone.position().z, 1.5, 0.05);
    EXPECT_LT(loop.drone.velocity().norm(), 0.05);
    EXPECT_NEAR(loop.drone.position().x, 0.0, 0.2);
    EXPECT_NEAR(loop.drone.position().y, 0.0, 0.2);
}

TEST(Controller, ClimbsToAltitude)
{
    Loop loop;
    loop.drone.setPose({0, 0, 0.2}, Quat{});
    VelocityCommand cmd;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(6.0);
    EXPECT_NEAR(loop.drone.position().z, 1.5, 0.08);
}

TEST(Controller, TracksForwardVelocity)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.forward = 3.0;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(6.0);
    EXPECT_NEAR(loop.drone.velocity().x, 3.0, 0.3);
    EXPECT_NEAR(loop.drone.velocity().y, 0.0, 0.2);
    EXPECT_GT(loop.drone.position().x, 10.0);
    EXPECT_NEAR(loop.drone.position().z, 1.5, 0.15);
}

TEST(Controller, TracksLateralVelocity)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.lateral = 1.5; // leftward (+y)
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(6.0);
    EXPECT_NEAR(loop.drone.velocity().y, 1.5, 0.25);
    EXPECT_GT(loop.drone.position().y, 4.0);
}

TEST(Controller, TracksYawRate)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.yawRate = 0.5;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(2.0);
    // After the rate loop converges, yaw should advance at ~0.5 rad/s.
    EXPECT_NEAR(loop.drone.bodyRates().z, 0.5, 0.1);
    EXPECT_GT(loop.drone.attitude().yaw(), 0.6);
}

TEST(Controller, ForwardFlightWhileYawingCurves)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.forward = 2.0;
    cmd.yawRate = 0.4;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(5.0);
    // Heading rotated, so velocity direction rotated with it.
    double yaw = loop.drone.attitude().yaw();
    EXPECT_GT(yaw, 1.0);
    double speed = std::hypot(loop.drone.velocity().x,
                              loop.drone.velocity().y);
    EXPECT_NEAR(speed, 2.0, 0.4);
}

TEST(Controller, MotorLimitsRespected)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.forward = 50.0; // absurd target: outputs must stay clamped
    cmd.altitude = 10.0;
    loop.ctrl.setCommand(cmd);
    for (int i = 0; i < 600; ++i) {
        MotorCommand mc = loop.ctrl.update(loop.drone.state(), 1.0 / 600);
        for (double t : mc) {
            EXPECT_GE(t, 0.0);
            EXPECT_LE(t, VehicleParams{}.maxMotorThrustN);
        }
        loop.drone.setMotorCommand(mc);
        loop.drone.step(1.0 / 600);
    }
}

TEST(Controller, ResetClearsIntegrators)
{
    Loop loop;
    VelocityCommand cmd;
    cmd.forward = 3.0;
    loop.ctrl.setCommand(cmd);
    loop.run(2.0);
    loop.ctrl.reset();
    // A reset controller at hover state should output near-hover thrust.
    env::Drone fresh{env::DroneParams{}};
    fresh.setPose({0, 0, 1.5}, Quat{});
    VelocityCommand hover;
    hover.altitude = 1.5;
    loop.ctrl.setCommand(hover);
    MotorCommand mc = loop.ctrl.update(fresh.state(), 1.0 / 600);
    double total = mc[0] + mc[1] + mc[2] + mc[3];
    EXPECT_NEAR(total, 9.81, 1.5);
}

// --------------------------------------------- command latching behavior

TEST(Controller, TracksMostRecentTarget)
{
    // SimpleFlight semantics: the controller tracks the last target
    // received, holding it until replaced.
    Loop loop;
    VelocityCommand a;
    a.forward = 2.0;
    a.altitude = 1.5;
    loop.ctrl.setCommand(a);
    loop.run(4.0);
    VelocityCommand b;
    b.forward = -1.0;
    b.altitude = 1.5;
    loop.ctrl.setCommand(b);
    loop.run(5.0);
    EXPECT_NEAR(loop.drone.velocity().x, -1.0, 0.3);
}

// ------------------------------------------- parameterized step sweeps

/** Forward-velocity step responses across the command range: the
 *  closed loop must settle near the target without large overshoot. */
class VelocityStepResponse : public ::testing::TestWithParam<double>
{
};

TEST_P(VelocityStepResponse, SettlesNearTarget)
{
    double target = GetParam();
    Loop loop;
    VelocityCommand cmd;
    cmd.forward = target;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);

    // Track the peak while running to bound overshoot.
    double peak = 0.0;
    const double dt = 1.0 / 600.0;
    for (int i = 0; i < int(8.0 / dt); ++i) {
        loop.drone.setMotorCommand(
            loop.ctrl.update(loop.drone.state(), dt));
        loop.drone.step(dt);
        peak = std::max(peak, loop.drone.velocity().x);
    }
    EXPECT_NEAR(loop.drone.velocity().x, target, 0.15 * target + 0.2);
    EXPECT_LT(peak, 1.35 * target + 0.5);
    // Altitude held throughout.
    EXPECT_NEAR(loop.drone.position().z, 1.5, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Targets, VelocityStepResponse,
                         ::testing::Values(1.0, 3.0, 6.0, 9.0, 12.0));

/** Yaw-rate step responses across the command range. */
class YawRateStepResponse : public ::testing::TestWithParam<double>
{
};

TEST_P(YawRateStepResponse, TracksRate)
{
    double target = GetParam();
    Loop loop;
    VelocityCommand cmd;
    cmd.yawRate = target;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    loop.run(3.0);
    EXPECT_NEAR(loop.drone.bodyRates().z, target,
                0.15 * std::abs(target) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, YawRateStepResponse,
                         ::testing::Values(-1.0, -0.5, 0.25, 0.5, 1.0));

TEST(Controller, RejectsConstantWind)
{
    // A steady lateral disturbance force must not blow the hover away:
    // the velocity integrator trims against it.
    Loop loop;
    VelocityCommand cmd;
    cmd.altitude = 1.5;
    loop.ctrl.setCommand(cmd);
    const double dt = 1.0 / 600.0;
    loop.drone.setExternalForce({0.0, 1.2, 0.0}); // ~0.12 g sideways
    for (int i = 0; i < int(10.0 / dt); ++i) {
        loop.drone.setMotorCommand(
            loop.ctrl.update(loop.drone.state(), dt));
        loop.drone.step(dt);
    }
    EXPECT_LT(std::abs(loop.drone.velocity().y), 0.3);
    EXPECT_LT(std::abs(loop.drone.position().y), 3.0);
}
