/**
 * @file
 * Fuzz/property tests for the bridge wire framing (bridge/packet.hh).
 *
 * Two properties, each over hundreds of seeded-random streams:
 *
 *  1. Robustness: arbitrary bytes pushed through FrameBuffer in
 *     arbitrary chunk sizes always classify every prefix as exactly
 *     Ok / NeedMore / Malformed — no crash, no hang, no unbounded
 *     allocation (any Ok payload respects kMaxPayloadBytes), and a
 *     poisoned buffer stays Malformed forever.
 *
 *  2. Round-trip: every packet type, encoded and serialized into one
 *     stream then re-fed through the decoder fragmented at random
 *     boundaries, comes back byte-equal and in order regardless of
 *     how the stream was chunked.
 *
 * All randomness is from the repo's deterministic Rng, so a failing
 * seed is printed and reproducible.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bridge/packet.hh"
#include "env/sensors.hh"
#include "util/rng.hh"

using namespace rose;
using namespace rose::bridge;

namespace {

/** Feed a byte stream to a FrameBuffer in random-size chunks, draining
 *  after every append. Fills @p decoded with the decoded packets;
 *  asserts the classification invariants along the way. (Void return:
 *  gtest ASSERT_* only works in void functions — callers check
 *  HasFatalFailure().) */
void
pushChunked(FrameBuffer &fb, const std::vector<uint8_t> &stream,
            Rng &rng, std::vector<Packet> &decoded,
            bool *poisoned = nullptr)
{
    bool dead = false;
    size_t pos = 0;
    while (pos < stream.size()) {
        size_t chunk = 1 + rng.uniformInt(257); // 1..257 bytes
        if (chunk > stream.size() - pos)
            chunk = stream.size() - pos;
        fb.append(stream.data() + pos, chunk);
        pos += chunk;

        // Drain. Each Ok consumes >= kHeaderBytes, so the loop is
        // bounded by stream bytes / header size — enforce it so a
        // zero-consumption decoder bug hangs the test run, not CI.
        size_t guard = stream.size() / Packet::kHeaderBytes + 2;
        for (;;) {
            ASSERT_GT(guard--, 0u) << "decoder loop did not terminate";
            Packet p;
            std::string err;
            FrameStatus st = fb.next(p, &err);
            ASSERT_TRUE(st == FrameStatus::Ok ||
                        st == FrameStatus::NeedMore ||
                        st == FrameStatus::Malformed)
                << "unclassified status " << int(st);
            if (st == FrameStatus::Ok) {
                ASSERT_FALSE(dead)
                    << "Ok after Malformed: poison did not stick";
                ASSERT_TRUE(isValidPacketType(uint8_t(p.type)));
                ASSERT_LE(p.payload.size(), kMaxPayloadBytes);
                decoded.push_back(std::move(p));
                continue;
            }
            if (st == FrameStatus::Malformed) {
                EXPECT_FALSE(err.empty())
                    << "Malformed must carry a diagnostic";
                dead = true;
            }
            break; // NeedMore or Malformed: nothing more this chunk
        }
    }
    if (poisoned)
        *poisoned = dead;
}

/** Build one of each packet type, with payload contents drawn from
 *  rng so repeated calls produce distinct packets. */
std::vector<Packet>
samplePackets(Rng &rng)
{
    env::ImuSample imu;
    imu.accel = {rng.uniform(-20, 20), rng.uniform(-20, 20),
                 rng.uniform(-20, 20)};
    imu.gyro = {rng.uniform(-5, 5), rng.uniform(-5, 5),
                rng.uniform(-5, 5)};
    imu.timestamp = rng.uniform(0, 1e4);

    env::Image img(int(4 + rng.uniformInt(29)),
                   int(4 + rng.uniformInt(29)));
    for (float &px : img.pixels)
        px = float(rng.uniform());

    VelocityCmdPayload cmd;
    cmd.forward = rng.uniform(-10, 10);
    cmd.lateral = rng.uniform(-10, 10);
    cmd.yawRate = rng.uniform(-3, 3);

    return {
        encodeSyncGrant(rng.next()),
        encodeSyncDone(rng.next()),
        encodeCfgStepSize(1 + rng.uniformInt(1u << 20)),
        encodeImuReq(),
        encodeImuResp(imu),
        encodeImageReq(),
        encodeImageResp(img),
        encodeDepthReq(),
        encodeDepthResp(rng.uniform(0, 100)),
        encodeVelocityCmd(cmd),
    };
}

} // namespace

TEST(FramingFuzz, RandomBytesNeverCrashOrHang)
{
    // Pure noise: almost every stream poisons quickly (the first bad
    // type byte), but nothing may crash, loop, or allocate past the
    // payload bound on the way there.
    for (uint64_t seed = 0; seed < 200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(0xf022'0000 + seed);

        std::vector<uint8_t> noise(64 + rng.uniformInt(4096));
        for (uint8_t &b : noise)
            b = uint8_t(rng.next());

        FrameBuffer fb;
        std::vector<Packet> decoded;
        pushChunked(fb, noise, rng, decoded);
        if (HasFatalFailure())
            return;
    }
}

TEST(FramingFuzz, ValidTypeBytesStressLengthHandling)
{
    // Adversarial middle ground: streams whose bytes are biased toward
    // valid type codes and plausible little-endian lengths, so the
    // decoder frequently gets past the type check and must survive the
    // length-field paths (huge lengths, truncated payloads).
    const uint8_t types[] = {0x01, 0x02, 0x03, 0x10, 0x11,
                             0x12, 0x13, 0x14, 0x15, 0x16};
    for (uint64_t seed = 0; seed < 200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(0xb1a5'0000 + seed);

        std::vector<uint8_t> stream;
        size_t records = 1 + rng.uniformInt(40);
        for (size_t r = 0; r < records; ++r) {
            stream.push_back(types[rng.uniformInt(10)]);
            // Length field: mostly small, sometimes enormous.
            uint32_t len = rng.bernoulli(0.15)
                               ? uint32_t(rng.next())
                               : uint32_t(rng.uniformInt(512));
            for (int i = 0; i < 4; ++i)
                stream.push_back(uint8_t(len >> (8 * i)));
            // Truncated-or-complete payload filler.
            size_t fill = rng.uniformInt(300);
            for (size_t i = 0; i < fill; ++i)
                stream.push_back(uint8_t(rng.next()));
        }

        FrameBuffer fb;
        std::vector<Packet> decoded;
        pushChunked(fb, stream, rng, decoded);
        if (HasFatalFailure())
            return;
    }
}

TEST(FramingFuzz, RoundTripSurvivesArbitraryFragmentation)
{
    for (uint64_t seed = 0; seed < 200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(0x0f2a'6000 + seed);

        // A stream of several full packet sets, shuffled draws.
        std::vector<Packet> sent;
        size_t sets = 1 + rng.uniformInt(3);
        for (size_t s = 0; s < sets; ++s) {
            std::vector<Packet> batch = samplePackets(rng);
            for (Packet &p : batch)
                sent.push_back(std::move(p));
        }

        std::vector<uint8_t> stream;
        for (const Packet &p : sent)
            serializePacket(p, stream);

        FrameBuffer fb;
        bool poisoned = false;
        std::vector<Packet> got;
        pushChunked(fb, stream, rng, got, &poisoned);
        if (HasFatalFailure())
            return;

        EXPECT_FALSE(poisoned) << "valid stream classified Malformed";
        ASSERT_EQ(got.size(), sent.size());
        EXPECT_EQ(fb.pendingBytes(), 0u);
        for (size_t i = 0; i < sent.size(); ++i) {
            EXPECT_EQ(got[i].type, sent[i].type) << "packet " << i;
            EXPECT_EQ(got[i].payload, sent[i].payload) << "packet " << i;
        }
    }
}

TEST(FramingFuzz, TypedCodecsRoundTripThroughTheWire)
{
    // Beyond byte equality: the typed decode of a re-framed packet
    // reproduces the encoded values exactly.
    Rng rng(0xc0dec);
    env::ImuSample imu;
    imu.accel = {1.25, -9.81, 0.5};
    imu.gyro = {-0.125, 0.75, 2.0};
    imu.timestamp = 123.456;

    env::Image img(8, 6);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = float(i) / float(img.pixels.size());

    VelocityCmdPayload cmd{3.5, -1.25, 0.5};

    std::vector<uint8_t> stream;
    serializePacket(encodeSyncGrant(0x1234'5678'9abc'def0ULL), stream);
    serializePacket(encodeImuResp(imu), stream);
    serializePacket(encodeImageResp(img), stream);
    serializePacket(encodeDepthResp(42.5), stream);
    serializePacket(encodeVelocityCmd(cmd), stream);

    FrameBuffer fb;
    std::vector<Packet> got;
    pushChunked(fb, stream, rng, got);
    ASSERT_EQ(got.size(), 5u);

    EXPECT_EQ(decodeSyncGrant(got[0]), 0x1234'5678'9abc'def0ULL);

    env::ImuSample imu2 = decodeImuResp(got[1]);
    EXPECT_EQ(imu2.accel.x, imu.accel.x);
    EXPECT_EQ(imu2.accel.y, imu.accel.y);
    EXPECT_EQ(imu2.accel.z, imu.accel.z);
    EXPECT_EQ(imu2.gyro.x, imu.gyro.x);
    EXPECT_EQ(imu2.timestamp, imu.timestamp);

    env::Image img2 = decodeImageResp(got[2]);
    ASSERT_EQ(img2.width, img.width);
    ASSERT_EQ(img2.height, img.height);
    // Transport quantizes to 8 bits; values match to 1/255.
    for (size_t i = 0; i < img.pixels.size(); ++i)
        EXPECT_NEAR(img2.pixels[i], img.pixels[i], 1.0f / 255.0f)
            << "pixel " << i;

    EXPECT_EQ(decodeDepthResp(got[3]), 42.5);

    VelocityCmdPayload cmd2 = decodeVelocityCmd(got[4]);
    EXPECT_EQ(cmd2.forward, cmd.forward);
    EXPECT_EQ(cmd2.lateral, cmd.lateral);
    EXPECT_EQ(cmd2.yawRate, cmd.yawRate);
}

TEST(FramingFuzz, HeaderEdgeCases)
{
    Packet p;
    std::string err;
    size_t consumed = 0;

    // Empty / short prefixes of a valid header: NeedMore, 0 consumed.
    std::vector<uint8_t> valid;
    serializePacket(encodeDepthReq(), valid);
    for (size_t n = 0; n < valid.size(); ++n) {
        EXPECT_EQ(tryDecodeFrame(valid.data(), n, consumed, p, &err),
                  FrameStatus::NeedMore)
            << "prefix " << n;
        EXPECT_EQ(consumed, 0u);
    }
    EXPECT_EQ(tryDecodeFrame(valid.data(), valid.size(), consumed, p,
                             &err),
              FrameStatus::Ok);
    EXPECT_EQ(consumed, valid.size());

    // Unknown type byte: the decoder validates the header as a unit,
    // so a lone bad byte is NeedMore until the header completes, then
    // Malformed.
    uint8_t bad_type[] = {0xee, 0, 0, 0, 0};
    EXPECT_EQ(tryDecodeFrame(bad_type, 1, consumed, p, &err),
              FrameStatus::NeedMore);
    EXPECT_EQ(tryDecodeFrame(bad_type, sizeof(bad_type), consumed, p,
                             &err),
              FrameStatus::Malformed);

    // Length above kMaxPayloadBytes: Malformed, not NeedMore — a
    // poisoned length must never make the receiver wait forever.
    uint32_t huge = uint32_t(kMaxPayloadBytes) + 1;
    uint8_t oversize[] = {0x10, uint8_t(huge), uint8_t(huge >> 8),
                          uint8_t(huge >> 16), uint8_t(huge >> 24)};
    EXPECT_EQ(tryDecodeFrame(oversize, sizeof(oversize), consumed, p,
                             &err),
              FrameStatus::Malformed);

    // Length exactly at the bound with no payload yet: NeedMore (it is
    // legitimate, just incomplete).
    uint32_t max = uint32_t(kMaxPayloadBytes);
    uint8_t at_bound[] = {0x13, uint8_t(max), uint8_t(max >> 8),
                          uint8_t(max >> 16), uint8_t(max >> 24)};
    EXPECT_EQ(tryDecodeFrame(at_bound, sizeof(at_bound), consumed, p,
                             &err),
              FrameStatus::NeedMore);
}

TEST(FramingFuzz, PoisonedBufferStaysPoisoned)
{
    FrameBuffer fb;
    uint8_t junk[] = {0xff, 1, 2, 3, 4, 5, 6, 7};
    fb.append(junk, sizeof(junk));

    Packet p;
    EXPECT_EQ(fb.next(p), FrameStatus::Malformed);

    // Even a perfectly valid packet appended afterwards must not
    // decode: framing is unrecoverable once lost.
    std::vector<uint8_t> valid;
    serializePacket(encodeImuReq(), valid);
    fb.append(valid.data(), valid.size());
    EXPECT_EQ(fb.next(p), FrameStatus::Malformed);

    fb.clear();
    fb.append(valid.data(), valid.size());
    EXPECT_EQ(fb.next(p), FrameStatus::Ok);
    EXPECT_EQ(p.type, PacketType::ImuReq);
}
