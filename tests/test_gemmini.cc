/**
 * @file
 * Tests for the Gemmini-class accelerator model: tiling, timing, and
 * functional GEMM, including property-style sweeps over shapes.
 */

#include <gtest/gtest.h>

#include "gemmini/gemmini.hh"
#include "util/rng.hh"

using namespace rose;
using namespace rose::gemmini;

TEST(Gemmini, DefaultConfigMatchesPaper)
{
    GemminiConfig c;
    EXPECT_EQ(c.meshRows, 4);
    EXPECT_EQ(c.meshCols, 4);
    EXPECT_EQ(c.elemBytes, 4); // FP32
    EXPECT_EQ(c.scratchpadBytes, 256u * 1024u);
    EXPECT_EQ(c.accumulatorBytes, 64u * 1024u);
    EXPECT_DOUBLE_EQ(c.busBytesPerCycle, 16.0); // 128-bit bus
    EXPECT_EQ(c.macsPerCycle(), 16);
}

TEST(Gemmini, TileShapeFitsBudgets)
{
    Gemmini g;
    const GemminiConfig &c = g.config();
    int tm, tk, tn;
    g.tileShape(2500, 288, 64, tm, tk, tn);
    EXPECT_GT(tm, 0);
    EXPECT_GT(tk, 0);
    EXPECT_GT(tn, 0);
    // Output tile fits the accumulator.
    EXPECT_LE(uint64_t(tm) * tn * c.elemBytes, c.accumulatorBytes);
    // A+B tiles fit half the scratchpad (double buffering).
    EXPECT_LE((uint64_t(tm) * tk + uint64_t(tk) * tn) * c.elemBytes,
              c.scratchpadBytes);
}

TEST(Gemmini, TimingScalesWithWork)
{
    Gemmini g;
    GemmCost small = g.gemmCycles(64, 64, 64);
    GemmCost big = g.gemmCycles(256, 256, 256);
    // 64x work should cost far more than 8x cycles but not more
    // than ~64x + overheads.
    EXPECT_GT(big.totalCycles, 8 * small.totalCycles);
    EXPECT_LT(big.totalCycles, 200 * small.totalCycles);
    EXPECT_EQ(big.macs, uint64_t(256) * 256 * 256);
}

TEST(Gemmini, LargeGemmUtilizationHigh)
{
    // Compute-bound shape: utilization should approach peak.
    Gemmini g;
    GemmCost c = g.gemmCycles(2048, 512, 512);
    EXPECT_GT(c.utilization(g.config()), 0.6);
    EXPECT_LE(c.utilization(g.config()), 1.0);
}

TEST(Gemmini, SkinnyGemmUtilizationLow)
{
    // A 1-row GEMM (dense layer) cannot fill the mesh.
    Gemmini g;
    GemmCost c = g.gemmCycles(1, 256, 3);
    EXPECT_LT(c.utilization(g.config()), 0.25);
}

TEST(Gemmini, MemoryBoundShapeChargesBus)
{
    // Huge K with tiny M/N moves lots of data per MAC.
    Gemmini g;
    GemmCost c = g.gemmCycles(4, 65536, 4);
    EXPECT_GT(c.memoryCycles, 0u);
    // Bus time for A+B at 16 B/cycle is a hard lower bound.
    uint64_t bytes = (uint64_t(4) * 65536 + uint64_t(65536) * 4) * 4;
    EXPECT_GE(c.totalCycles, Cycles(double(bytes) / 16.0 * 0.9));
}

TEST(Gemmini, FunctionalMatmulCorrect)
{
    Gemmini g;
    // 2x3 * 3x2.
    std::vector<float> a{1, 2, 3, 4, 5, 6};
    std::vector<float> b{7, 8, 9, 10, 11, 12};
    std::vector<float> c;
    g.matmul(2, 3, 2, a, b, c);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_FLOAT_EQ(c[0], 58.0f);  // 1*7+2*9+3*11
    EXPECT_FLOAT_EQ(c[1], 64.0f);  // 1*8+2*10+3*12
    EXPECT_FLOAT_EQ(c[2], 139.0f);
    EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(Gemmini, FunctionalMatchesNaive)
{
    Gemmini g;
    Rng rng(5);
    int m = 17, k = 23, n = 9;
    std::vector<float> a(size_t(m) * k), b(size_t(k) * n);
    for (float &v : a)
        v = float(rng.uniform(-1, 1));
    for (float &v : b)
        v = float(rng.uniform(-1, 1));
    std::vector<float> c;
    g.matmul(m, k, n, a, b, c);
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            double ref = 0;
            for (int kk = 0; kk < k; ++kk)
                ref += double(a[size_t(i) * k + kk]) *
                       double(b[size_t(kk) * n + j]);
            EXPECT_NEAR(c[size_t(i) * n + j], ref, 1e-4);
        }
    }
}

// Property sweep: for every shape, invariants of the cost model hold.
class GemminiShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemminiShapeProperty, CostInvariants)
{
    auto [m, k, n] = GetParam();
    Gemmini g;
    GemmCost c = g.gemmCycles(m, k, n);
    // MAC count is exact.
    EXPECT_EQ(c.macs, uint64_t(m) * k * n);
    // Total cycles at least the compute lower bound at peak.
    EXPECT_GE(c.totalCycles,
              c.macs / uint64_t(g.config().macsPerCycle()));
    // Utilization bounded by 1.
    EXPECT_LE(c.utilization(g.config()), 1.0 + 1e-9);
    // Data moved at least covers reading A and B once and writing C.
    uint64_t min_bytes =
        (uint64_t(m) * k + uint64_t(k) * n + uint64_t(m) * n) * 4;
    EXPECT_GE(c.bytesMoved, min_bytes);
    EXPECT_GT(c.tiles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemminiShapeProperty,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(4, 4, 4),
                      std::make_tuple(5, 7, 3),
                      std::make_tuple(100, 288, 32),
                      std::make_tuple(2500, 288, 64),
                      std::make_tuple(625, 1152, 128),
                      std::make_tuple(1, 256, 3),
                      std::make_tuple(1024, 16, 1024)));

TEST(Gemmini, BiggerScratchpadNeverSlower)
{
    // Monotonicity: doubling the scratchpad cannot hurt the model.
    GemminiConfig small;
    GemminiConfig big;
    big.scratchpadBytes *= 2;
    big.accumulatorBytes *= 2;
    Gemmini gs(small), gb(big);
    for (auto [m, k, n] : {std::tuple<int, int, int>{2500, 288, 64},
                           {625, 1152, 128}, {169, 2304, 256}}) {
        EXPECT_LE(gb.gemmCycles(m, k, n).totalCycles,
                  gs.gemmCycles(m, k, n).totalCycles * 1.02);
    }
}

TEST(Gemmini, WiderBusHelpsMemoryBoundShapes)
{
    GemminiConfig narrow;
    narrow.busBytesPerCycle = 4.0;
    GemminiConfig wide;
    wide.busBytesPerCycle = 32.0;
    Gemmini gn(narrow), gw(wide);
    GemmCost cn = gn.gemmCycles(4, 65536, 4);
    GemmCost cw = gw.gemmCycles(4, 65536, 4);
    EXPECT_LT(cw.totalCycles, cn.totalCycles);
}
