/**
 * @file
 * Golden-trace regression tests: three canonical tunnel missions (SoC
 * configs A, B, C from Table 2) with checked-in FNV-1a hashes of their
 * trajectory CSVs. Silent physics/timing drift — a changed integrator
 * constant, a reordered RNG draw, an off-by-one sync period — fails
 * here instead of quietly corrupting every number in EXPERIMENTS.md.
 *
 * When a change *intentionally* alters simulation behavior, regenerate
 * the goldens: run this binary with ROSE_REGEN_GOLDEN=1 and paste the
 * printed table over kGolden below (the test fails in regen mode so CI
 * can never pass on unpinned values). The trajectory CSV format itself
 * is part of the hashed surface (see core::trajectoryCsvString).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "util/hash.hh"

using namespace rose;

namespace {

/** The canonical mission: tunnel, ResNet14 @ 3 m/s, +20 degree initial
 *  heading (exercises the correction transient), seed 1, 10 simulated
 *  seconds. Only the SoC config varies. */
core::MissionSpec
canonicalSpec(const std::string &socName)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = socName;
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = 1;
    spec.maxSimSeconds = 10.0;
    return spec;
}

struct Golden
{
    const char *socName;
    uint64_t trajectoryHash; ///< fnv1a(trajectoryCsvString(result))
    size_t trajectorySamples;
    uint64_t collisions;
};

// Regenerate with ROSE_REGEN_GOLDEN=1 (see file header).
constexpr Golden kGolden[] = {
    {"A", 0x2b24ad514f06c3cbULL, 1000, 0},
    {"B", 0x02771540364e358fULL, 1000, 0},
    {"C", 0x0e337585f9a29f6aULL, 1000, 27},
};

} // namespace

TEST(GoldenTrace, CanonicalTunnelMissions)
{
    const bool regen = std::getenv("ROSE_REGEN_GOLDEN") != nullptr;
    if (regen)
        std::printf("// Regenerated goldens — paste over kGolden:\n");

    for (const Golden &g : kGolden) {
        SCOPED_TRACE(std::string("config ") + g.socName);
        core::MissionResult r =
            core::runMission(canonicalSpec(g.socName));
        std::string csv = core::trajectoryCsvString(r);
        uint64_t hash = fnv1a(csv);

        if (regen) {
            std::printf("    {\"%s\", 0x%016llxULL, %zu, %llu},\n",
                        g.socName, (unsigned long long)hash,
                        r.trajectory.size(),
                        (unsigned long long)r.collisions);
            continue;
        }

        // Coarse goldens first: when these differ the drift is
        // behavioral (physics/control), not just numeric formatting.
        EXPECT_EQ(r.trajectory.size(), g.trajectorySamples);
        EXPECT_EQ(r.collisions, g.collisions);

        char actual[32];
        std::snprintf(actual, sizeof(actual), "0x%016llx",
                      (unsigned long long)hash);
        EXPECT_EQ(hash, g.trajectoryHash)
            << "trajectory CSV hash drifted (actual " << actual
            << "); if the change is intentional, regenerate with "
               "ROSE_REGEN_GOLDEN=1";
    }

    if (regen)
        FAIL() << "ROSE_REGEN_GOLDEN set: goldens printed, not checked";
}

TEST(GoldenTrace, HashPrimitivesAreStable)
{
    // The golden hashes are only as durable as the hash itself: pin
    // FNV-1a against its published test vectors.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(GoldenTrace, CsvStringMatchesFileOutput)
{
    // The hashed string form and the file writer must never diverge —
    // the goldens guard the same bytes the bench CSVs contain.
    core::MissionSpec spec = canonicalSpec("A");
    spec.maxSimSeconds = 2.0;
    core::MissionResult r = core::runMission(spec);

    std::string path = ::testing::TempDir() + "golden_traj.csv";
    core::writeTrajectoryCsv(path, r);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string fromFile;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        fromFile.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(fromFile, core::trajectoryCsvString(r));
}
