/**
 * @file
 * Tests for the hot-path engine: bit-exactness of the blocked GEMM
 * microkernel against the naive reference (including ragged tails,
 * signed zeros, packing, and row parallelism), zero steady-state
 * allocation of the workspace forward pass and cached pose estimator,
 * and bit-identity of the buffer-reusing camera/sensor paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>

#include "dnn/classifier.hh"
#include "dnn/engine.hh"
#include "dnn/forward.hh"
#include "env/sensors.hh"
#include "env/world.hh"
#include "gemmini/gemmini.hh"
#include "util/arena.hh"
#include "util/rng.hh"

using namespace rose;
using namespace rose::dnn;
using namespace rose::gemmini;

// --------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps
// it, so a steady-state region that performs zero heap allocations is
// directly observable. Counting is always on; the zero-alloc
// assertions are skipped under sanitizers, whose instrumentation may
// allocate on its own schedule.

namespace {
std::atomic<uint64_t> g_allocCount{0};
} // namespace

void *
operator new(size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kUnderSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kUnderSanitizer = true;
#else
constexpr bool kUnderSanitizer = false;
#endif
#else
constexpr bool kUnderSanitizer = false;
#endif

/** Fill a matrix with random values, injecting exact +/-0.0 entries —
 *  the values the naive kernel's skip branch treats specially. */
void
fillMatrix(std::vector<float> &m, Rng &rng, double zeroFrac)
{
    for (float &v : m) {
        double roll = rng.uniform(0, 1);
        if (roll < zeroFrac / 2)
            v = 0.0f;
        else if (roll < zeroFrac)
            v = -0.0f;
        else
            v = float(rng.uniform(-1, 1));
    }
}

template <typename VecA, typename VecB>
bool
bitIdentical(const VecA &a, const VecB &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(float)) == 0);
}

} // namespace

// ----------------------------------------------------------- GEMM kernel

TEST(HotpathGemm, BlockedMatchesNaiveBitExact)
{
    // Shapes straddle every blocking boundary: sub-tile, exact
    // multiples of the 8-wide panel / 8-row tile, ragged tails in every
    // dimension, and k odd (exercises the unroll remainder).
    const int shapes[][3] = {
        {1, 1, 1},   {3, 5, 7},    {8, 8, 8},    {8, 9, 16},
        {13, 17, 9}, {32, 28, 40}, {57, 64, 31}, {64, 72, 80},
        {100, 33, 65},
    };
    Gemmini g;
    Rng rng(2024);
    for (const auto &s : shapes) {
        int m = s[0], k = s[1], n = s[2];
        std::vector<float> a(size_t(m) * k), b(size_t(k) * n);
        // Heavy zero injection in A: the naive kernel skips those
        // terms, the blocked kernel does not — bit-identity across the
        // skip is the determinism theorem under test.
        fillMatrix(a, rng, 0.4);
        fillMatrix(b, rng, 0.1);
        std::vector<float> naive(size_t(m) * n, -1.f);
        std::vector<float> blocked(size_t(m) * n, 1.f);
        g.matmulNaive(m, k, n, a.data(), b.data(), naive.data());
        g.matmul(m, k, n, a.data(), b.data(), blocked.data());
        EXPECT_TRUE(bitIdentical(naive, blocked))
            << "shape " << m << "x" << k << "x" << n;
    }
}

TEST(HotpathGemm, PackedAndThreadedMatchBitExact)
{
    Gemmini g;
    Rng rng(77);
    const int m = 300, k = 45, n = 61; // ragged everywhere, m > block
    std::vector<float> a(size_t(m) * k), b(size_t(k) * n);
    fillMatrix(a, rng, 0.3);
    fillMatrix(b, rng, 0.0);

    std::vector<float> ref(size_t(m) * n);
    g.matmulNaive(m, k, n, a.data(), b.data(), ref.data());

    PackedB pb;
    Gemmini::packB(k, n, b.data(), pb);
    std::vector<float> viaPacked(size_t(m) * n);
    g.matmulPacked(m, a.data(), pb, viaPacked.data());
    EXPECT_TRUE(bitIdentical(ref, viaPacked));

    // Deterministic row parallelism: disjoint row chunks, identical
    // per-element FP order, so the result is bitwise the same.
    for (int threads : {2, 3, 4, 7}) {
        std::vector<float> par(size_t(m) * n);
        g.matmulPacked(m, a.data(), pb, par.data(), threads);
        EXPECT_TRUE(bitIdentical(ref, par)) << threads << " threads";
    }
}

TEST(HotpathGemm, PackBZeroPadsRaggedPanel)
{
    const int k = 5, n = 13; // 13 = one full panel + 5-wide tail
    std::vector<float> b(size_t(k) * n);
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = float(i + 1);
    PackedB pb;
    Gemmini::packB(k, n, b.data(), pb);
    const int pw = Gemmini::kPanelWidth;
    ASSERT_EQ(pb.k, k);
    ASSERT_EQ(pb.n, n);
    ASSERT_EQ(pb.data.size(), size_t(2) * k * pw);
    // Panel 0 holds columns 0..7 row-contiguously.
    for (int kk = 0; kk < k; ++kk)
        for (int j = 0; j < pw; ++j)
            EXPECT_EQ(pb.data[size_t(kk) * pw + j], b[size_t(kk) * n + j]);
    // Panel 1 holds columns 8..12 and three zero-padded lanes.
    const float *panel1 = pb.data.data() + size_t(k) * pw;
    for (int kk = 0; kk < k; ++kk)
        for (int j = 0; j < pw; ++j) {
            float want = j < 5 ? b[size_t(kk) * n + 8 + j] : 0.0f;
            EXPECT_EQ(panel1[size_t(kk) * pw + j], want);
        }
}

TEST(HotpathGemm, PackWeightsTransposedFoldsTranspose)
{
    const int k = 7, n = 11;
    Rng rng(5);
    std::vector<float> wt(size_t(n) * k); // W[N,K]: B's transpose
    fillMatrix(wt, rng, 0.0);
    std::vector<float> b(size_t(k) * n);
    for (int kk = 0; kk < k; ++kk)
        for (int j = 0; j < n; ++j)
            b[size_t(kk) * n + j] = wt[size_t(j) * k + kk];
    PackedB fromB, fromW;
    Gemmini::packB(k, n, b.data(), fromB);
    Gemmini::packWeightsTransposed(k, n, wt.data(), fromW);
    EXPECT_TRUE(bitIdentical(fromB.data, fromW.data));
}

// ------------------------------------------------------- ISA dispatch

namespace {

/** RAII: drop any tier override so later tests see auto again. */
struct IsaGuard
{
    ~IsaGuard() { resetGemmIsa(); }
};

} // namespace

TEST(HotpathGemmIsa, NamesParseAndScalarAlwaysSupported)
{
    bool is_auto = false;
    GemmIsa isa = GemmIsa::Avx2;
    EXPECT_TRUE(parseGemmIsa("auto", is_auto, isa));
    EXPECT_TRUE(is_auto);
    for (GemmIsa t :
         {GemmIsa::Scalar, GemmIsa::Avx2, GemmIsa::Avx2Fma}) {
        is_auto = true;
        GemmIsa parsed = GemmIsa::Scalar;
        ASSERT_TRUE(parseGemmIsa(gemmIsaName(t), is_auto, parsed));
        EXPECT_FALSE(is_auto);
        EXPECT_EQ(parsed, t);
    }
    EXPECT_FALSE(parseGemmIsa("sse9", is_auto, isa));
    EXPECT_FALSE(parseGemmIsa("", is_auto, isa));
    EXPECT_TRUE(gemmIsaSupported(GemmIsa::Scalar));
    // Whatever auto resolved to must itself be a supported tier.
    EXPECT_TRUE(gemmIsaSupported(activeGemmIsa()));
}

TEST(HotpathGemmIsa, BitExactTiersMatchOracleExactly)
{
    // Every compiled-and-supported bit-exact tier must reproduce the
    // naive oracle to the bit, across shapes that straddle the
    // small-shape scalar fallback (< 2^14 multiply-adds), the 8-wide
    // panel / 8-row tile boundaries, and ragged tails in every
    // dimension — with +/-0.0 and subnormal inputs in the mix (the
    // vector path must not flush or re-associate differently).
    const int shapes[][3] = {
        {1, 1, 1},    {4, 4, 4},    {16, 16, 16}, {32, 32, 32},
        {33, 17, 31}, {8, 2048, 8}, {128, 9, 17}, {57, 64, 31},
        {40, 28, 72}, {100, 33, 65},
    };
    IsaGuard guard;
    Gemmini g;
    Rng rng(0x15a);
    for (const auto &s : shapes) {
        int m = s[0], k = s[1], n = s[2];
        std::vector<float> a(size_t(m) * k), b(size_t(k) * n);
        fillMatrix(a, rng, 0.3);
        fillMatrix(b, rng, 0.2);
        for (size_t i = 0; i < a.size(); i += 17)
            a[i] = 1e-41f; // subnormal
        for (size_t i = 3; i < b.size(); i += 23)
            b[i] = -1e-39f;
        std::vector<float> oracle(size_t(m) * n);
        g.matmulNaive(m, k, n, a.data(), b.data(), oracle.data());

        for (GemmIsa tier : {GemmIsa::Scalar, GemmIsa::Avx2}) {
            if (!gemmIsaSupported(tier))
                continue;
            setGemmIsa(tier);
            std::vector<float> out(size_t(m) * n, -2.f);
            g.matmul(m, k, n, a.data(), b.data(), out.data());
            EXPECT_TRUE(bitIdentical(oracle, out))
                << gemmIsaName(tier) << " " << m << "x" << k << "x"
                << n;
            // The packed + threaded path dispatches identically.
            PackedB pb;
            Gemmini::packB(k, n, b.data(), pb);
            std::vector<float> par(size_t(m) * n, -3.f);
            g.matmulPacked(m, a.data(), pb, par.data(), 3);
            EXPECT_TRUE(bitIdentical(oracle, par))
                << gemmIsaName(tier) << " threaded " << m << "x" << k
                << "x" << n;
        }
    }
}

TEST(HotpathGemmIsa, FmaTierStaysWithinAccumulationTolerance)
{
    if (!gemmIsaSupported(GemmIsa::Avx2Fma))
        GTEST_SKIP() << "avx2fma not compiled in or not supported "
                        "by this CPU";
    // FMA fuses the multiply-add rounding, so bit-identity to the
    // oracle is NOT promised (that is why the tier is opt-in). What
    // is promised: each output stays within a small multiple of the
    // worst-case float accumulation error of its dot product.
    IsaGuard guard;
    Gemmini g;
    Rng rng(0xf0a);
    const int m = 45, k = 300, n = 33; // above the scalar fallback
    std::vector<float> a(size_t(m) * k), b(size_t(k) * n);
    fillMatrix(a, rng, 0.2);
    fillMatrix(b, rng, 0.1);
    std::vector<float> oracle(size_t(m) * n);
    g.matmulNaive(m, k, n, a.data(), b.data(), oracle.data());

    setGemmIsa(GemmIsa::Avx2Fma);
    ASSERT_EQ(activeGemmIsa(), GemmIsa::Avx2Fma);
    std::vector<float> fma(size_t(m) * n);
    g.matmul(m, k, n, a.data(), b.data(), fma.data());

    const double eps = 1.1920928955078125e-07; // 2^-23
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            double absSum = 0.0;
            for (int t = 0; t < k; ++t)
                absSum += std::fabs(double(a[size_t(i) * k + t]) *
                                    double(b[size_t(t) * n + j]));
            double tol = 2.0 * double(k) * eps * absSum + 1e-30;
            ASSERT_NEAR(double(fma[size_t(i) * n + j]),
                        double(oracle[size_t(i) * n + j]), tol)
                << "element (" << i << "," << j << ")";
        }
    }
}

TEST(HotpathGemmIsa, UnsupportedRequestDegradesNotFails)
{
    IsaGuard guard;
    // Requesting any tier — supported or not — must leave the
    // dispatcher on a tier the host can actually run.
    for (GemmIsa t :
         {GemmIsa::Avx2Fma, GemmIsa::Avx2, GemmIsa::Scalar}) {
        setGemmIsa(t);
        EXPECT_TRUE(gemmIsaSupported(activeGemmIsa()))
            << "requested " << gemmIsaName(t);
    }
    resetGemmIsa();
    EXPECT_TRUE(gemmIsaSupported(activeGemmIsa()));
}

TEST(HotpathGemmIsa, ForwardPassParityScalarVsAuto)
{
    // The full DNN forward pass — im2col, packed GEMM, bias/relu,
    // dense head — must be bit-identical whether the dispatcher runs
    // the scalar kernel or whatever auto resolved to (auto only ever
    // picks bit-exact tiers unless ROSE_GEMM_FMA opts in; CI pins a
    // scalar-forced pass of the whole suite on top of this).
    IsaGuard guard;
    Model m = makeResNet(6);
    Weights w = initWeights(m, 21);
    PackedWeights pw = packWeights(m, w);
    Tensor in(1, kDnnInputH, kDnnInputW);
    Rng rng(303);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));

    setGemmIsa(GemmIsa::Scalar);
    ForwardWorkspace wsScalar;
    ForwardResult scalar;
    runForward(m, w, pw, in, wsScalar, scalar);

    resetGemmIsa(); // back to auto (env / cpuid resolution)
    ForwardWorkspace wsAuto;
    ForwardResult fast;
    runForward(m, w, pw, in, wsAuto, fast);

    EXPECT_TRUE(bitIdentical(scalar.angularProbs, fast.angularProbs));
    EXPECT_TRUE(bitIdentical(scalar.lateralProbs, fast.lateralProbs));
}

// --------------------------------------------------------- ScratchArena

TEST(HotpathArena, SteadyStateHasNoGrowth)
{
    ScratchArena arena;
    arena.floats(0, 1000);
    arena.floats(1, 64);
    uint64_t afterFirst = arena.growthEvents();
    EXPECT_GT(afterFirst, 0u);
    for (int frame = 0; frame < 10; ++frame) {
        std::vector<float> &a = arena.floats(0, 1000);
        std::vector<float> &b = arena.floats(1, 64);
        EXPECT_EQ(a.size(), 1000u);
        EXPECT_EQ(b.size(), 64u);
        // Shrinking requests reuse capacity too.
        arena.floats(0, 500);
    }
    EXPECT_EQ(arena.growthEvents(), afterFirst);
    arena.floats(0, 2000); // genuine growth is still counted
    EXPECT_GT(arena.growthEvents(), afterFirst);
}

// ------------------------------------------------------- forward engine

TEST(HotpathForward, WorkspaceMatchesReferenceBitExact)
{
    for (int depth : {6, 14}) {
        Model m = makeResNet(depth);
        Weights w = initWeights(m, 33);
        PackedWeights pw = packWeights(m, w);
        Tensor in(1, kDnnInputH, kDnnInputW);
        Rng rng(101 + depth);
        for (float &v : in.data())
            v = float(rng.uniform(0, 1));

        ForwardResult ref = runForward(m, w, in, /*use_gemm=*/true);
        ForwardWorkspace ws;
        ForwardResult got;
        runForward(m, w, pw, in, ws, got);
        EXPECT_TRUE(bitIdentical(ref.angularProbs, got.angularProbs))
            << "depth " << depth;
        EXPECT_TRUE(bitIdentical(ref.lateralProbs, got.lateralProbs))
            << "depth " << depth;

        // Re-running with the warmed workspace is still identical.
        runForward(m, w, pw, in, ws, got);
        EXPECT_TRUE(bitIdentical(ref.angularProbs, got.angularProbs));
        EXPECT_TRUE(bitIdentical(ref.lateralProbs, got.lateralProbs));
    }
}

TEST(HotpathForward, ThreadedWorkspaceMatchesBitExact)
{
    Model m = makeResNet(6);
    Weights w = initWeights(m, 9);
    PackedWeights pw = packWeights(m, w);
    Tensor in(1, kDnnInputH, kDnnInputW);
    Rng rng(55);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));
    ForwardWorkspace one, four;
    four.gemmThreads = 4;
    ForwardResult a, b;
    runForward(m, w, pw, in, one, a);
    runForward(m, w, pw, in, four, b);
    EXPECT_TRUE(bitIdentical(a.angularProbs, b.angularProbs));
    EXPECT_TRUE(bitIdentical(a.lateralProbs, b.lateralProbs));
}

TEST(HotpathForward, SteadyStateZeroAllocation)
{
    if (kUnderSanitizer)
        GTEST_SKIP() << "allocation counting is unreliable under "
                        "sanitizer instrumentation";
    Model m = makeResNet(6);
    Weights w = initWeights(m, 13);
    PackedWeights pw = packWeights(m, w);
    Tensor in(1, kDnnInputH, kDnnInputW);
    Rng rng(17);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));

    ForwardWorkspace ws;
    ForwardResult out;
    // Warm-up frames size every buffer.
    runForward(m, w, pw, in, ws, out);
    runForward(m, w, pw, in, ws, out);
    uint64_t growth = ws.arena.growthEvents();

    uint64_t before = g_allocCount.load();
    for (int frame = 0; frame < 5; ++frame)
        runForward(m, w, pw, in, ws, out);
    uint64_t allocs = g_allocCount.load() - before;
    EXPECT_EQ(allocs, 0u)
        << "steady-state forward pass performed heap allocations";
    EXPECT_EQ(ws.arena.growthEvents(), growth);
}

// ----------------------------------------------------- shared artifacts

TEST(HotpathShared, PackedWeightsAndSchedulesAreMemoized)
{
    auto w1 = sharedWeights(6, 42);
    auto w2 = sharedWeights(6, 42);
    EXPECT_EQ(w1.get(), w2.get());
    EXPECT_NE(w1.get(), sharedWeights(6, 43).get());

    auto p1 = sharedPackedWeights(6, 42);
    auto p2 = sharedPackedWeights(6, 42);
    EXPECT_EQ(p1.get(), p2.get());

    // Packed entries exist for every weighted layer (convs + heads).
    Model m = makeResNet(6);
    for (const LayerSpec &l : m.layers)
        if (l.weighted())
            EXPECT_EQ(p1->layers.count(l.name), 1u) << l.name;

    soc::SocConfig soc;
    ExecutionEngine eng(soc);
    std::shared_ptr<const Model> model = sharedResNet(6);
    auto s1 = eng.scheduleShared(*model);
    auto s2 = eng.scheduleShared(*model);
    EXPECT_EQ(s1.get(), s2.get());
    // The memoized schedule is the schedule.
    InferenceSchedule direct = eng.schedule(*model);
    EXPECT_EQ(s1->totalCycles, direct.totalCycles);
    EXPECT_EQ(s1->accelCycles, direct.accelCycles);
    EXPECT_EQ(s1->layers.size(), direct.layers.size());
}

// ------------------------------------------------------ camera hot path

TEST(HotpathCamera, RenderIntoBitIdenticalAndReusesBuffer)
{
    env::TunnelWorld world;
    env::Camera a(env::CameraConfig{}, Rng(7));
    env::Camera b(env::CameraConfig{}, Rng(7));
    env::Drone drone;
    env::Image reused;
    Rng rng(3);
    const float *pixels = nullptr;
    for (int frame = 0; frame < 6; ++frame) {
        drone.setPose({rng.uniform(5, 45), rng.uniform(-1, 1), 1.5},
                      Quat::fromEuler(0, 0, rng.uniform(-0.3, 0.3)));
        env::Image fresh =
            a.render(world, drone.position(), drone.attitude());
        b.renderInto(world, drone.position(), drone.attitude(), reused);
        ASSERT_EQ(fresh.width, reused.width);
        ASSERT_EQ(fresh.height, reused.height);
        EXPECT_TRUE(bitIdentical(fresh.pixels, reused.pixels))
            << "frame " << frame;
        if (frame == 0)
            pixels = reused.pixels.data();
        else
            EXPECT_EQ(reused.pixels.data(), pixels)
                << "image buffer was reallocated";
    }
}

// ----------------------------------------------------- pose-scratch path

TEST(HotpathPose, ScratchOverloadBitIdentical)
{
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(21));
    env::Drone drone;
    Rng rng(23);
    EstimatorConfig cfg;
    PoseScratch scratch;
    for (int frame = 0; frame < 8; ++frame) {
        drone.setPose({rng.uniform(5, 45), rng.uniform(-1, 1), 1.5},
                      Quat::fromEuler(0, 0, rng.uniform(-0.3, 0.3)));
        env::Image img = cam.render(world, drone);
        PoseEstimate fresh = estimatePose(img, cfg);
        PoseEstimate cached = estimatePose(img, cfg, scratch);
        EXPECT_EQ(fresh.valid, cached.valid);
        // Bitwise double equality, not near-equality: the cached
        // tables hold exactly the values the fresh path recomputes.
        EXPECT_EQ(std::memcmp(&fresh.headingRad, &cached.headingRad,
                              sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&fresh.offsetM, &cached.offsetM,
                              sizeof(double)), 0);
    }
}

TEST(HotpathPose, ScratchSteadyStateZeroAllocation)
{
    if (kUnderSanitizer)
        GTEST_SKIP() << "allocation counting is unreliable under "
                        "sanitizer instrumentation";
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(31));
    env::Drone drone;
    drone.setPose({10, 0.2, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Image img;
    cam.renderInto(world, drone.position(), drone.attitude(), img);

    EstimatorConfig cfg;
    PoseScratch scratch;
    estimatePose(img, cfg, scratch); // sizes the cache + scratch
    uint64_t before = g_allocCount.load();
    for (int i = 0; i < 5; ++i)
        estimatePose(img, cfg, scratch);
    EXPECT_EQ(g_allocCount.load() - before, 0u);
}

TEST(HotpathPose, ScratchRebuildsOnConfigChange)
{
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(41));
    env::Drone drone;
    drone.setPose({12, -0.4, 1.5}, Quat::fromEuler(0, 0, -0.15));
    env::Image img = cam.render(world, drone);

    PoseScratch scratch;
    EstimatorConfig cfg;
    PoseEstimate a = estimatePose(img, cfg, scratch);
    EstimatorConfig other = cfg;
    other.maxDepth *= 0.5;
    PoseEstimate b = estimatePose(img, other, scratch);
    PoseEstimate bFresh = estimatePose(img, other);
    EXPECT_EQ(std::memcmp(&b.headingRad, &bFresh.headingRad,
                          sizeof(double)), 0);
    // Switching back re-keys again and still matches the fresh path.
    PoseEstimate a2 = estimatePose(img, cfg, scratch);
    EXPECT_EQ(std::memcmp(&a.headingRad, &a2.headingRad,
                          sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.offsetM, &a2.offsetM, sizeof(double)), 0);
}
