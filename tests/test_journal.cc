/**
 * @file
 * Durability-edge tests for the write-ahead job journal
 * (serve/journal.hh) plus the shared backoff helper (util/backoff.hh).
 *
 * The journal's contract under fire is what crash recovery stands on:
 * a torn tail (crash mid-append) or a corrupt record must truncate
 * recovery at the last intact record — never abort — while a header
 * from a different format or config fingerprint must be refused
 * outright. These tests drive byte-level damage through replayBytes()
 * and full reopen cycles through JobJournal itself.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "serve/journal.hh"
#include "util/backoff.hh"
#include "util/hash.hh"

using namespace rose;
using namespace rose::serve;

namespace {

core::MissionSpec
testSpec(uint64_t seed)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = "A";
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = seed;
    spec.maxSimSeconds = 1.5;
    return spec;
}

ServedResult
testResult(const std::string &csv)
{
    ServedResult r;
    r.completed = true;
    r.missionTime = 1.5;
    r.collisions = 2;
    r.trajectorySamples = 7;
    r.trajectoryCsv = csv;
    r.trajectoryHash = fnv1a(csv);
    r.queueWaitMs = 3.5;
    r.serviceMs = 42.0;
    return r;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<uint8_t> bytes;
    if (!f)
        return bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
}

/** Fresh scratch dir per test: wipe any leftover journal state. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = "journal_test_" + name;
    std::remove((dir + "/journal.wal").c_str());
    std::remove((dir + "/journal.wal.tmp").c_str());
    for (uint64_t id = 1; id <= 16; ++id)
        std::remove(
            (dir + "/job-" + std::to_string(id) + ".ckpt").c_str());
    return dir;
}

/** A journal with two submits, one Done terminal, one release. */
std::vector<uint8_t>
buildSampleJournal(const std::string &name, uint64_t fp,
                   std::string *wal_out = nullptr)
{
    std::string dir = scratchDir(name);
    JobJournal j(dir, fp);
    j.appendSubmit(1, "key-1", testSpec(1));
    j.appendSubmit(2, "key-2", testSpec(2));
    j.appendTerminal(1, JobState::Done,
                     testResult("t,x,y,z\n0,1,2,3\n"));
    j.appendSubmit(3, "", testSpec(3));
    j.appendReleased(3);
    if (wal_out)
        *wal_out = j.walPath();
    return readFile(j.walPath());
}

} // namespace

// ---------------------------------------------------------- Backoff

TEST(Backoff, GrowsGeometricallyUpToCap)
{
    // Zero jitter makes the schedule deterministic.
    Backoff b({50, 400, 2.0, 0.0});
    EXPECT_EQ(b.nextDelayMs(), 50);
    EXPECT_EQ(b.nextDelayMs(), 100);
    EXPECT_EQ(b.nextDelayMs(), 200);
    EXPECT_EQ(b.nextDelayMs(), 400);
    EXPECT_EQ(b.nextDelayMs(), 400); // capped
    EXPECT_EQ(b.attempts(), 5);
    b.reset();
    EXPECT_EQ(b.attempts(), 0);
    EXPECT_EQ(b.nextDelayMs(), 50);
}

TEST(Backoff, JitterStaysWithinEnvelopeAndVaries)
{
    Backoff b({100, 1000, 2.0, 0.5}, 1234);
    std::set<int> seen;
    int expected_full = 100;
    for (int i = 0; i < 6; ++i) {
        int d = b.nextDelayMs();
        EXPECT_GE(d, std::max(1, expected_full / 2));
        EXPECT_LE(d, expected_full);
        seen.insert(d);
        expected_full = std::min(1000, expected_full * 2);
    }
    // Jittered delays should not all collapse to one value.
    EXPECT_GT(seen.size(), 1u);
}

TEST(Backoff, ClampsDegenerateConfig)
{
    Backoff b({-5, -10, 0.5, 7.0});
    for (int i = 0; i < 4; ++i) {
        int d = b.nextDelayMs();
        EXPECT_GE(d, 1);
        EXPECT_LE(d, 1);
    }
}

// ---------------------------------------------------------- Journal

TEST(Journal, FreshDirectoryReplaysEmpty)
{
    std::string dir = scratchDir("fresh");
    JobJournal j(dir, journalFingerprint(true));
    JournalReplay rep = j.takeReplay();
    EXPECT_TRUE(rep.jobs.empty());
    EXPECT_EQ(rep.recordsReplayed, 0u);
    EXPECT_FALSE(rep.recoveredFromCorruption);
}

TEST(Journal, RoundTripAcrossReopen)
{
    uint64_t fp = journalFingerprint(true);
    std::string dir = scratchDir("roundtrip");
    {
        JobJournal j(dir, fp);
        j.appendSubmit(1, "key-1", testSpec(1));
        j.appendSubmit(2, "key-2", testSpec(2));
        j.appendTerminal(1, JobState::Done,
                         testResult("t,x\n0,1\n"));
        j.appendSubmit(3, "", testSpec(3));
        j.appendReleased(3);
    }
    JobJournal j2(dir, fp);
    JournalReplay rep = j2.takeReplay();
    ASSERT_EQ(rep.jobs.size(), 2u);
    EXPECT_EQ(rep.maxJobId, 3u);

    const RecoveredJob &done = rep.jobs[0];
    EXPECT_EQ(done.jobId, 1u);
    EXPECT_EQ(done.idempotencyKey, "key-1");
    EXPECT_TRUE(done.terminal);
    EXPECT_EQ(done.state, JobState::Done);
    EXPECT_EQ(done.result.trajectoryCsv, "t,x\n0,1\n");
    EXPECT_EQ(done.result.trajectoryHash, fnv1a("t,x\n0,1\n"));
    EXPECT_DOUBLE_EQ(done.result.serviceMs, 42.0);

    const RecoveredJob &queued = rep.jobs[1];
    EXPECT_EQ(queued.jobId, 2u);
    EXPECT_FALSE(queued.terminal);
    EXPECT_EQ(queued.spec.seed, 2u);
    EXPECT_EQ(queued.spec.world, "tunnel");
}

TEST(Journal, CompactionDropsReleasedJobs)
{
    uint64_t fp = journalFingerprint(true);
    std::string dir = scratchDir("compact");
    uint64_t before;
    {
        JobJournal j(dir, fp);
        j.appendSubmit(1, "k", testSpec(1));
        j.appendTerminal(1, JobState::Done, testResult("csv\n"));
        j.appendReleased(1);
        before = j.bytesOnDisk();
    }
    // Reopen compacts: the released job's records disappear.
    JobJournal j2(dir, fp);
    EXPECT_TRUE(j2.takeReplay().jobs.empty());
    EXPECT_LT(j2.bytesOnDisk(), before);
}

TEST(Journal, TruncatedTailRecoversPrefix)
{
    uint64_t fp = journalFingerprint(true);
    std::vector<uint8_t> bytes = buildSampleJournal("torntail", fp);
    // Tear the last record: drop the trailing 5 bytes (inside the
    // record hash), exactly what a crash mid-append leaves.
    std::vector<uint8_t> torn(bytes.begin(), bytes.end() - 5);
    size_t keep = 0;
    JournalReplay rep = JobJournal::replayBytes(torn, fp, keep);
    EXPECT_TRUE(rep.recoveredFromCorruption);
    EXPECT_LT(keep, torn.size());
    // Everything before the torn Released record survived: job 1
    // terminal, job 2 queued, job 3 still present (its release was
    // the torn record).
    ASSERT_EQ(rep.jobs.size(), 3u);
    EXPECT_TRUE(rep.jobs[0].terminal);
    EXPECT_FALSE(rep.jobs[1].terminal);
    EXPECT_EQ(rep.jobs[2].jobId, 3u);
}

TEST(Journal, TruncatedTailReopensCleanly)
{
    uint64_t fp = journalFingerprint(true);
    std::string wal;
    std::vector<uint8_t> bytes =
        buildSampleJournal("tornreopen", fp, &wal);
    bytes.resize(bytes.size() - 3);
    writeFile(wal, bytes);
    // The constructor must recover (truncate + compact), not abort.
    std::string dir = wal.substr(0, wal.rfind('/'));
    JobJournal j(dir, fp);
    JournalReplay rep = j.takeReplay();
    EXPECT_TRUE(rep.recoveredFromCorruption);
    EXPECT_EQ(rep.jobs.size(), 3u);
    // And the compacted journal replays identically next time.
    JobJournal j2(dir, fp);
    JournalReplay rep2 = j2.takeReplay();
    EXPECT_FALSE(rep2.recoveredFromCorruption);
    EXPECT_EQ(rep2.jobs.size(), 3u);
}

TEST(Journal, CorruptMidJournalRecordTruncatesFromThere)
{
    uint64_t fp = journalFingerprint(true);
    std::vector<uint8_t> bytes = buildSampleJournal("midflip", fp);

    // Flip one byte inside the second record's payload. The header
    // is 20 bytes; the first record starts right after it. Walk the
    // record framing to find the second record's payload start.
    size_t off = 20;
    auto recLen = [&](size_t at) {
        uint32_t len = 0;
        std::memcpy(&len, bytes.data() + at + 1, 4);
        return size_t(1 + 4 + len + 8);
    };
    size_t second = off + recLen(off);
    ASSERT_LT(second + 6, bytes.size());
    bytes[second + 6] ^= 0xff;

    size_t keep = 0;
    JournalReplay rep = JobJournal::replayBytes(bytes, fp, keep);
    EXPECT_TRUE(rep.recoveredFromCorruption);
    EXPECT_EQ(keep, second);
    // Only the first record (submit of job 1) survives; everything
    // after the damaged record is gone — never wrong, never fatal.
    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_EQ(rep.jobs[0].jobId, 1u);
    EXPECT_FALSE(rep.jobs[0].terminal);
}

TEST(Journal, FingerprintMismatchIsRejected)
{
    uint64_t fp = journalFingerprint(true);
    std::string wal;
    buildSampleJournal("fpmismatch", fp, &wal);
    std::string dir = wal.substr(0, wal.rfind('/'));
    // A daemon running a different execution mode must refuse to
    // reinterpret this journal (supervise flips the fingerprint).
    EXPECT_THROW(JobJournal(dir, journalFingerprint(false)),
                 JournalError);
    // The right fingerprint still opens it (job 3 was released, so
    // two jobs survive).
    JobJournal ok(dir, fp);
    EXPECT_EQ(ok.takeReplay().jobs.size(), 2u);
}

TEST(Journal, GarbageFileIsRejected)
{
    std::string dir = scratchDir("garbage");
    ::mkdir(dir.c_str(), 0755);
    std::vector<uint8_t> junk(64, 0x5a);
    writeFile(dir + "/journal.wal", junk);
    EXPECT_THROW(JobJournal(dir, journalFingerprint(true)),
                 JournalError);
}

TEST(Journal, TornHeaderRecoversAsEmpty)
{
    uint64_t fp = journalFingerprint(true);
    std::string wal;
    buildSampleJournal("tornheader", fp, &wal);
    std::string dir = wal.substr(0, wal.rfind('/'));
    // Keep only the first 6 bytes of the magic: a crash during the
    // very first header write. Recoverable (nothing was journaled
    // yet), not a format mismatch.
    std::vector<uint8_t> bytes = readFile(wal);
    bytes.resize(6);
    writeFile(wal, bytes);
    JobJournal j(dir, fp);
    JournalReplay rep = j.takeReplay();
    EXPECT_TRUE(rep.jobs.empty());
    EXPECT_TRUE(rep.recoveredFromCorruption);
}

TEST(Journal, CancelledTerminalReplaysAsTombstone)
{
    uint64_t fp = journalFingerprint(true);
    std::string dir = scratchDir("cancelled");
    {
        JobJournal j(dir, fp);
        j.appendSubmit(1, "k", testSpec(1));
        j.appendTerminal(1, JobState::Cancelled, ServedResult{});
    }
    JobJournal j2(dir, fp);
    JournalReplay rep = j2.takeReplay();
    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_TRUE(rep.jobs[0].terminal);
    EXPECT_EQ(rep.jobs[0].state, JobState::Cancelled);
}

TEST(Journal, CheckpointPathsLiveInTheJournalDir)
{
    std::string dir = scratchDir("ckptpath");
    JobJournal j(dir, journalFingerprint(true));
    EXPECT_EQ(j.checkpointPathFor(7), dir + "/job-7.ckpt");
    // removeCheckpoint of a nonexistent file is a harmless no-op.
    j.removeCheckpoint(7);
}
