/**
 * @file
 * Tests for the shared memory-system models: DRAM channel timing and
 * shared-bus arbitration/contention.
 */

#include <gtest/gtest.h>

#include "soc/mem.hh"

using namespace rose;
using namespace rose::soc;

// ------------------------------------------------------------------ DRAM

TEST(Dram, SingleAccessLatency)
{
    DramConfig cfg;
    cfg.accessLatency = 40;
    cfg.bytesPerCycle = 16.0;
    cfg.burstBytes = 64;
    Dram d(cfg);
    // 64 bytes: 40 latency + 4 transfer cycles.
    EXPECT_EQ(d.access(0, 64), 44u);
    EXPECT_EQ(d.stats().requests, 1u);
    EXPECT_EQ(d.stats().bytes, 64u);
}

TEST(Dram, RoundsUpToBursts)
{
    Dram d;
    d.access(0, 1); // one byte still moves a full 64 B burst
    EXPECT_EQ(d.stats().bytes, 64u);
}

TEST(Dram, BackToBackQueues)
{
    DramConfig cfg;
    cfg.accessLatency = 40;
    cfg.bytesPerCycle = 16.0;
    Dram d(cfg);
    Cycles first = d.access(0, 64);
    // Second request at cycle 0 waits for the first to drain.
    Cycles second = d.access(0, 64);
    EXPECT_EQ(second, first + 44);
    EXPECT_EQ(d.stats().queueWaitCycles, first);
}

TEST(Dram, IdleGapNoQueueing)
{
    Dram d;
    Cycles first = d.access(0, 64);
    Cycles second = d.access(first + 100, 64);
    EXPECT_EQ(second, first + 100 + 44);
    EXPECT_EQ(d.stats().queueWaitCycles, 0u);
}

TEST(Dram, UtilizationAccounting)
{
    Dram d;
    d.access(0, 640); // 40 + 40 cycles busy
    EXPECT_DOUBLE_EQ(d.utilization(160), 0.5);
}

// ------------------------------------------------------------------- bus

TEST(SharedBus, SingleMasterTransferTime)
{
    SharedBus bus(16.0);
    int m = bus.addMaster("gemmini");
    // 1600 bytes at 16 B/cy = 100 cycles.
    EXPECT_EQ(bus.transfer(m, 0, 1600), 100u);
    EXPECT_EQ(bus.masterStats(m).bytes, 1600u);
    EXPECT_EQ(bus.masterStats(m).waitCycles, 0u);
}

TEST(SharedBus, ContentionSerializes)
{
    SharedBus bus(16.0);
    int a = bus.addMaster("gemmini");
    int b = bus.addMaster("cpu");
    Cycles done_a = bus.transfer(a, 0, 1600);
    Cycles done_b = bus.transfer(b, 0, 1600);
    EXPECT_EQ(done_a, 100u);
    EXPECT_EQ(done_b, 200u);
    EXPECT_EQ(bus.masterStats(b).waitCycles, 100u);
}

TEST(SharedBus, FairAccountingPerMaster)
{
    SharedBus bus(8.0);
    int a = bus.addMaster("a");
    int b = bus.addMaster("b");
    for (int i = 0; i < 10; ++i) {
        bus.transfer(a, 0, 80);
        bus.transfer(b, 0, 80);
    }
    EXPECT_EQ(bus.masterStats(a).transfers, 10u);
    EXPECT_EQ(bus.masterStats(b).transfers, 10u);
    EXPECT_EQ(bus.masterStats(a).bytes, bus.masterStats(b).bytes);
    // The later arrival in each pair eats the wait.
    EXPECT_GT(bus.masterStats(b).waitCycles,
              bus.masterStats(a).waitCycles);
}

TEST(SharedBus, EffectiveBandwidthModel)
{
    SharedBus bus(16.0);
    EXPECT_DOUBLE_EQ(bus.effectiveBandwidth(0.0), 16.0);
    EXPECT_DOUBLE_EQ(bus.effectiveBandwidth(0.5), 8.0);
    EXPECT_DOUBLE_EQ(bus.effectiveBandwidth(0.75), 4.0);
    // Clamped: a co-tenant can never fully starve the foreground.
    EXPECT_GT(bus.effectiveBandwidth(1.5), 0.0);
    EXPECT_GE(bus.effectiveBandwidth(-1.0), 16.0);
}

TEST(SharedBusDeathTest, UnknownMasterPanics)
{
    SharedBus bus(16.0);
    EXPECT_DEATH(bus.transfer(3, 0, 64), "unknown bus master");
}

TEST(SharedBus, MinimumOneCycle)
{
    SharedBus bus(16.0);
    int m = bus.addMaster("tiny");
    EXPECT_GE(bus.transfer(m, 0, 1), 1u);
}
