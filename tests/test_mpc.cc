/**
 * @file
 * Tests for the classical MPC workload (the paper's Section 6
 * future-directions application class): solver correctness and
 * convergence, data-dependent iteration counts, and closed-loop
 * navigation through the full co-simulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hh"
#include "runtime/mpc_app.hh"

using namespace rose;
using namespace rose::runtime;

// ---------------------------------------------------------------- solver

TEST(MpcSolver, ZeroErrorZeroControl)
{
    MpcConfig cfg;
    int iters = 0;
    std::vector<double> u = solveMpc(0.0, 0.0, cfg, iters);
    ASSERT_EQ(int(u.size()), cfg.horizon);
    for (double v : u)
        EXPECT_NEAR(v, 0.0, 1e-9);
    EXPECT_LE(iters, 2);
}

TEST(MpcSolver, CorrectsTowardCenterline)
{
    MpcConfig cfg;
    int iters = 0;
    // Offset left (positive): the optimizer must steer right
    // (negative yaw rate) to bring the offset down.
    std::vector<double> u = solveMpc(1.0, 0.0, cfg, iters);
    EXPECT_LT(u.front(), -0.1);

    // Heading left with no offset: also steer right.
    u = solveMpc(0.0, 0.3, cfg, iters);
    EXPECT_LT(u.front(), -0.1);

    // Mirror image.
    u = solveMpc(-1.0, 0.0, cfg, iters);
    EXPECT_GT(u.front(), 0.1);
}

TEST(MpcSolver, ReducesCost)
{
    MpcConfig cfg;
    int iters = 0;
    double final_cost = 0.0;
    solveMpc(1.0, 0.2, cfg, iters, &final_cost);

    // Cost of the zero-control rollout for comparison.
    MpcConfig one_iter = cfg;
    one_iter.maxIterations = 0;
    int iters0 = 0;
    double zero_cost = 0.0;
    solveMpc(1.0, 0.2, one_iter, iters0, &zero_cost);

    EXPECT_LT(final_cost, 0.5 * zero_cost);
}

TEST(MpcSolver, RespectsControlBounds)
{
    MpcConfig cfg;
    cfg.maxYawRate = 0.8;
    int iters = 0;
    std::vector<double> u = solveMpc(1.8, 0.4, cfg, iters);
    for (double v : u)
        EXPECT_LE(std::abs(v), 0.8 + 1e-12);
}

TEST(MpcSolver, IterationsAreDataDependent)
{
    // The Section 6 property RoSE exists to capture: a small tracking
    // error converges in fewer iterations than a large one.
    MpcConfig cfg;
    int small_it = 0, large_it = 0;
    solveMpc(0.02, 0.005, cfg, small_it);
    solveMpc(1.5, 0.35, cfg, large_it);
    EXPECT_LT(small_it, cfg.maxIterations);
    EXPECT_NE(small_it, large_it);
}

TEST(MpcSolver, DeterministicForSameInput)
{
    MpcConfig cfg;
    int ia = 0, ib = 0;
    std::vector<double> a = solveMpc(0.7, -0.1, cfg, ia);
    std::vector<double> b = solveMpc(0.7, -0.1, cfg, ib);
    EXPECT_EQ(ia, ib);
    EXPECT_EQ(a, b);
}

// ------------------------------------------------------------ closed loop

TEST(MpcMission, NavigatesTunnel)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.velocity = 3.0;
    spec.maxSimSeconds = 40.0;
    core::MpcMissionResult r = core::runMpcMission(spec);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.collisions, 0u);
    EXPECT_GT(r.log.size(), 200u); // fast classical loop
    // No accelerator work in the classical app.
    EXPECT_EQ(r.socStats.accelBusyCycles, 0u);
}

TEST(MpcMission, RuntimeVariabilityObserved)
{
    core::MissionSpec spec;
    spec.world = "s-shape";
    spec.velocity = 3.0;
    spec.maxSimSeconds = 60.0;
    core::MpcMissionResult r = core::runMpcMission(spec);
    ASSERT_TRUE(r.completed);
    int min_it = 1 << 30, max_it = 0;
    for (const MpcRecord &rec : r.log) {
        min_it = std::min(min_it, rec.solverIterations);
        max_it = std::max(max_it, rec.solverIterations);
    }
    // Through the curves the error varies, so iteration counts spread.
    EXPECT_GT(max_it, min_it + 5);
}

TEST(MpcMission, FasterLoopThanDnn)
{
    // The classical loop runs at a much higher control rate than the
    // DNN pipeline on the same SoC (ms-scale vs ~90 ms-scale).
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.velocity = 3.0;
    spec.maxSimSeconds = 30.0;

    core::MpcMissionResult mpc = core::runMpcMission(spec);
    core::MissionResult dnn = core::runMission(spec);
    ASSERT_TRUE(mpc.completed);
    ASSERT_TRUE(dnn.completed);
    EXPECT_GT(mpc.log.size(), 3 * dnn.inferences);
    EXPECT_LT(mpc.avgLatencySeconds(), dnn.avgInferenceLatency);
}
