/**
 * @file
 * Tests for multi-tenant execution: the background-load generator, the
 * time-sharing scheduler's accounting and blocking semantics, and the
 * end-to-end contention effect on the control loop.
 */

#include <gtest/gtest.h>

#include "bridge/rose_bridge.hh"
#include "bridge/transport.hh"
#include "core/experiment.hh"
#include "soc/multitenant.hh"
#include "soc/socsim.hh"

using namespace rose;
using namespace rose::soc;

namespace {

/** Scripted workload (same shape as in test_soc). */
class Script : public Workload
{
  public:
    explicit Script(std::vector<Action> script)
        : script_(std::move(script)) {}

    std::string workloadName() const override { return "script"; }

    Action
    next(const SocContext &) override
    {
        if (idx_ >= script_.size())
            return Action::halt();
        return script_[idx_++];
    }

  private:
    std::vector<Action> script_;
    size_t idx_ = 0;
};

struct Harness
{
    std::unique_ptr<bridge::Transport> hostEnd;
    std::unique_ptr<bridge::Transport> bridgeEnd;
    std::unique_ptr<bridge::RoseBridge> bridge;

    Harness()
    {
        auto [a, b] = bridge::makeInProcPair();
        hostEnd = std::move(a);
        bridgeEnd = std::move(b);
        bridge = std::make_unique<bridge::RoseBridge>(*bridgeEnd);
    }
};

} // namespace

TEST(BackgroundLoad, AlternatesBatchesAndIdle)
{
    BackgroundLoad bg(1000, 500);
    SocContext ctx;
    Action a = bg.next(ctx);
    EXPECT_EQ(a.kind, Action::Kind::Compute);
    EXPECT_EQ(a.unit, Unit::Cpu);
    EXPECT_EQ(a.cycles, 1000u);
    Action b = bg.next(ctx);
    EXPECT_EQ(b.unit, Unit::Io); // idle gap
    EXPECT_EQ(b.cycles, 500u);
    Action c = bg.next(ctx);
    EXPECT_EQ(c.unit, Unit::Cpu);
    EXPECT_EQ(bg.batchesRun(), 2u);
}

TEST(BackgroundLoad, AlwaysBusyWhenNoIdle)
{
    BackgroundLoad bg(700, 0);
    SocContext ctx;
    for (int i = 0; i < 5; ++i) {
        Action a = bg.next(ctx);
        EXPECT_EQ(a.unit, Unit::Cpu);
        EXPECT_EQ(a.cycles, 700u);
    }
}

TEST(TimeShared, FairSlicingWhenBothBusy)
{
    Script fg({Action::compute(1'000'000, Unit::Cpu)});
    BackgroundLoad bg(1'000'000, 0);
    TimeSharedWorkload ts(fg, bg, 10'000, 10'000);

    Harness h;
    h.hostEnd->send(bridge::encodeSyncGrant(400'000));
    SocSim sim(*h.bridge, ts, configA());
    sim.runPeriod();
    // Equal quanta: the 400k budget splits ~50/50.
    EXPECT_NEAR(double(ts.foregroundCpuCycles()), 200'000.0, 20'000.0);
    EXPECT_NEAR(double(ts.backgroundCpuCycles()), 200'000.0, 20'000.0);
}

TEST(TimeShared, AsymmetricQuantaSkewShare)
{
    Script fg({Action::compute(1'000'000, Unit::Cpu)});
    BackgroundLoad bg(1'000'000, 0);
    // Background gets 1/4 of the core.
    TimeSharedWorkload ts(fg, bg, 30'000, 10'000);

    Harness h;
    h.hostEnd->send(bridge::encodeSyncGrant(400'000));
    SocSim sim(*h.bridge, ts, configA());
    sim.runPeriod();
    double fg_share = double(ts.foregroundCpuCycles()) /
                      double(ts.foregroundCpuCycles() +
                             ts.backgroundCpuCycles());
    EXPECT_NEAR(fg_share, 0.75, 0.05);
}

TEST(TimeShared, BackgroundRunsDuringForegroundWait)
{
    // fg: compute, then wait on RX (which never fills), so the
    // background should own the rest of the period.
    Script fg({Action::compute(50'000, Unit::Cpu), Action::waitRx()});
    BackgroundLoad bg(25'000, 0);
    TimeSharedWorkload ts(fg, bg, 10'000, 10'000);

    Harness h;
    h.hostEnd->send(bridge::encodeSyncGrant(500'000));
    SocSim sim(*h.bridge, ts, configA());
    sim.runPeriod();
    EXPECT_EQ(ts.foregroundCpuCycles(), 50'000u);
    // The background soaked up (nearly) everything else.
    EXPECT_GT(ts.backgroundCpuCycles(), 400'000u);
    EXPECT_EQ(sim.stats().rxStallCycles, 0u);
}

TEST(TimeShared, AcceleratorActionsPassThrough)
{
    Script fg({Action::compute(10'000, Unit::Accel),
               Action::compute(10'000, Unit::Cpu)});
    BackgroundLoad bg(5'000, 0);
    TimeSharedWorkload ts(fg, bg, 2'000, 2'000);

    Harness h;
    h.hostEnd->send(bridge::encodeSyncGrant(100'000));
    SocSim sim(*h.bridge, ts, configA());
    sim.runPeriod();
    // The accelerator action was not sliced: it shows up whole in the
    // engine's accounting.
    EXPECT_EQ(sim.stats().accelBusyCycles, 10'000u);
    EXPECT_EQ(ts.foregroundCpuCycles(), 10'000u);
}

TEST(TimeShared, HaltedForegroundYieldsEverything)
{
    Script fg({}); // halts immediately
    BackgroundLoad bg(10'000, 0);
    TimeSharedWorkload ts(fg, bg, 5'000, 5'000);

    Harness h;
    h.hostEnd->send(bridge::encodeSyncGrant(100'000));
    SocSim sim(*h.bridge, ts, configA());
    sim.runPeriod();
    EXPECT_EQ(ts.backgroundCpuCycles(), 100'000u);
}

// -------------------------------------------------------- end-to-end

TEST(Multitenant, ContentionStretchesInferenceLatency)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.maxSimSeconds = 15.0;

    core::CosimConfig solo = spec.toConfig();
    core::CosimConfig shared = spec.toConfig();
    shared.background.enabled = true;
    shared.background.fgQuantum = 100'000;
    shared.background.bgQuantum = 100'000; // 50% co-tenant

    core::CoSimulation a(solo);
    core::MissionResult ra = a.run();
    core::CoSimulation b(shared);
    core::MissionResult rb = b.run();

    ASSERT_GT(ra.inferences, 0u);
    ASSERT_GT(rb.inferences, 0u);
    // Host-side work is time-sliced: latency must grow materially,
    // and the accelerator's activity factor must drop (same accel
    // work spread over more wall cycles).
    EXPECT_GT(rb.avgInferenceLatency, 1.3 * ra.avgInferenceLatency);
    EXPECT_LT(rb.accelActivityFactor, ra.accelActivityFactor);
}
