/**
 * @file
 * Tests for the runtime layer: Equation 2 control policy, the
 * Equations 3-5 deadline model, and the control application's state
 * machine driven through bridge + SoC engine.
 */

#include <gtest/gtest.h>

#include "bridge/rose_bridge.hh"
#include "bridge/target_driver.hh"
#include "bridge/transport.hh"
#include "env/sensors.hh"
#include "env/world.hh"
#include "runtime/control_app.hh"
#include "runtime/control_policy.hh"
#include "runtime/deadline.hh"
#include "soc/socsim.hh"

using namespace rose;
using namespace rose::runtime;

// ---------------------------------------------------------------- policy

namespace {

dnn::ClassifierOutput
makeOutput(float ang_left, float ang_center, float ang_right,
           float lat_left, float lat_center, float lat_right)
{
    dnn::ClassifierOutput o;
    o.angular.probs = {ang_left, ang_center, ang_right};
    o.lateral.probs = {lat_left, lat_center, lat_right};
    o.valid = true;
    return o;
}

} // namespace

TEST(Policy, CenteredOutputsNoCorrection)
{
    PolicyConfig cfg;
    cfg.forwardVelocity = 5.0;
    auto cmd = computeCommand(
        makeOutput(0.1f, 0.8f, 0.1f, 0.1f, 0.8f, 0.1f), cfg);
    EXPECT_DOUBLE_EQ(cmd.forward, 5.0);
    EXPECT_NEAR(cmd.lateral, 0.0, 1e-6);
    EXPECT_NEAR(cmd.yawRate, 0.0, 1e-6);
}

TEST(Policy, YawedRightCommandsLeftYaw)
{
    // Angular head says "right" (drone yawed right of the axis):
    // correction must be a positive (CCW/left) yaw rate.
    PolicyConfig cfg;
    auto cmd = computeCommand(
        makeOutput(0.05f, 0.15f, 0.8f, 0.1f, 0.8f, 0.1f), cfg);
    EXPECT_GT(cmd.yawRate, 0.5);
}

TEST(Policy, OffsetRightCommandsLeftMotion)
{
    // Lateral head says "right" (drone right of centerline):
    // correction must be positive lateral (leftward) velocity.
    PolicyConfig cfg;
    auto cmd = computeCommand(
        makeOutput(0.1f, 0.8f, 0.1f, 0.05f, 0.15f, 0.8f), cfg);
    EXPECT_GT(cmd.lateral, 0.5);
}

TEST(Policy, MarginScalingIsProportional)
{
    // Equation 2: targets scale with the softmax margins.
    PolicyConfig cfg;
    auto strong = computeCommand(
        makeOutput(0.0f, 0.1f, 0.9f, 0.33f, 0.34f, 0.33f), cfg);
    auto weak = computeCommand(
        makeOutput(0.2f, 0.3f, 0.5f, 0.33f, 0.34f, 0.33f), cfg);
    EXPECT_GT(strong.yawRate, weak.yawRate);
    EXPECT_NEAR(strong.yawRate / cfg.betaYaw, 0.9, 1e-5);
    EXPECT_NEAR(weak.yawRate / cfg.betaYaw, 0.3, 1e-5);
}

TEST(Policy, ArgmaxPolicyFullAuthority)
{
    PolicyConfig cfg;
    cfg.argmaxPolicy = true;
    auto cmd = computeCommand(
        makeOutput(0.2f, 0.3f, 0.5f, 0.5f, 0.3f, 0.2f), cfg);
    // Weak 0.5-probability classes still map to +-1 decisions.
    EXPECT_DOUBLE_EQ(cmd.yawRate, cfg.betaYaw);
    EXPECT_DOUBLE_EQ(cmd.lateral, -cfg.betaLateral);
}

TEST(Policy, ArgmaxCenterIsZero)
{
    PolicyConfig cfg;
    cfg.argmaxPolicy = true;
    auto cmd = computeCommand(
        makeOutput(0.2f, 0.6f, 0.2f, 0.1f, 0.8f, 0.1f), cfg);
    EXPECT_DOUBLE_EQ(cmd.yawRate, 0.0);
    EXPECT_DOUBLE_EQ(cmd.lateral, 0.0);
}

// -------------------------------------------------------------- deadline

TEST(Deadline, Equation5)
{
    DeadlineModel m;
    m.sensorLatency = 0.02;
    m.actuationLatency = 0.08;
    // t_collision = 6/3 = 2 s; budget = 2 - 0.1 = 1.9 s.
    EXPECT_NEAR(m.processDeadline(6.0, 3.0), 1.9, 1e-9);
    // Tight case clamps at zero.
    EXPECT_DOUBLE_EQ(m.processDeadline(0.2, 12.0), 0.0);
    // Hover: effectively unconstrained.
    EXPECT_GT(m.processDeadline(5.0, 0.0), 1e6);
}

TEST(Deadline, TightensWithVelocity)
{
    DeadlineModel m;
    double prev = 1e18;
    for (double v : {3.0, 6.0, 9.0, 12.0}) {
        double d = m.processDeadline(5.0, v);
        EXPECT_LT(d, prev);
        prev = d;
    }
}

// ----------------------------------------------------------- ControlApp

namespace {

/** Full target-side harness: bridge + driver + app + engine, with the
 *  host side scripted by the test. */
struct AppHarness
{
    std::unique_ptr<bridge::Transport> hostEnd;
    std::unique_ptr<bridge::Transport> bridgeEnd;
    std::unique_ptr<bridge::RoseBridge> bridge;
    std::unique_ptr<bridge::TargetDriver> driver;
    std::unique_ptr<ControlApp> app;
    std::unique_ptr<soc::SocSim> sim;

    env::TunnelWorld world;
    env::Camera cam{env::CameraConfig{}, Rng(61)};
    env::Drone drone;

    explicit AppHarness(AppConfig cfg = {},
                        soc::SocConfig scfg = soc::configA())
    {
        auto [a, b] = bridge::makeInProcPair();
        hostEnd = std::move(a);
        bridgeEnd = std::move(b);
        bridge = std::make_unique<bridge::RoseBridge>(*bridgeEnd);
        driver = std::make_unique<bridge::TargetDriver>(*bridge);
        app = std::make_unique<ControlApp>(*driver, scfg, cfg);
        sim = std::make_unique<soc::SocSim>(*bridge, *app, scfg);
        drone.setPose({10, 0.4, 1.5}, Quat::fromEuler(0, 0, 0.1));
    }

    /** Host side of one period: grant, run SoC, answer requests. */
    std::vector<bridge::Packet>
    period(Cycles grant = 10 * kMegaCycles, double depth = 20.0)
    {
        hostEnd->send(bridge::encodeSyncGrant(grant));
        sim->runPeriod();
        std::vector<bridge::Packet> from_soc;
        bridge::Packet p;
        while (hostEnd->recv(p)) {
            switch (p.type) {
              case bridge::PacketType::ImageReq:
                hostEnd->send(bridge::encodeImageResp(
                    cam.render(world, drone)));
                break;
              case bridge::PacketType::DepthReq:
                hostEnd->send(bridge::encodeDepthResp(depth));
                break;
              case bridge::PacketType::SyncDone:
                break;
              default:
                from_soc.push_back(p);
                break;
            }
        }
        return from_soc;
    }
};

} // namespace

TEST(ControlApp, CompletesControlIterations)
{
    AppConfig cfg;
    cfg.modelDepth = 14;
    AppHarness h(cfg);

    std::vector<bridge::Packet> cmds;
    for (int i = 0; i < 40 && cmds.size() < 2; ++i) {
        for (bridge::Packet &p : h.period())
            if (p.type == bridge::PacketType::VelocityCmd)
                cmds.push_back(p);
    }
    ASSERT_GE(cmds.size(), 2u);
    EXPECT_GE(h.app->inferenceCount(), 2u);

    bridge::VelocityCmdPayload v = bridge::decodeVelocityCmd(cmds[0]);
    EXPECT_DOUBLE_EQ(v.forward, cfg.policy.forwardVelocity);
}

TEST(ControlApp, LatencyNearModelLatency)
{
    AppConfig cfg;
    cfg.modelDepth = 14;
    AppHarness h(cfg);
    for (int i = 0; i < 60 && h.app->inferenceCount() < 3; ++i)
        h.period();
    ASSERT_GE(h.app->inferenceCount(), 3u);
    // Request->command latency ~ DNN latency + sync quantization:
    // between 80 ms and 120 ms at 10M-cycle periods.
    const auto &rec = h.app->records()[2];
    double lat = double(rec.requestToCommand()) / 1e9;
    EXPECT_GT(lat, 0.080);
    EXPECT_LT(lat, 0.125);
}

TEST(ControlApp, StaticModeNeverRequestsDepth)
{
    AppConfig cfg;
    cfg.mode = RuntimeMode::Static;
    AppHarness h(cfg);
    // Run several periods and check no depth request ever shows up
    // (period() would answer them; count via sync stats instead).
    bool saw_depth = false;
    for (int i = 0; i < 40; ++i) {
        h.hostEnd->send(bridge::encodeSyncGrant(10 * kMegaCycles));
        h.sim->runPeriod();
        bridge::Packet p;
        while (h.hostEnd->recv(p)) {
            if (p.type == bridge::PacketType::DepthReq)
                saw_depth = true;
            if (p.type == bridge::PacketType::ImageReq)
                h.hostEnd->send(bridge::encodeImageResp(
                    h.cam.render(h.world, h.drone)));
        }
    }
    EXPECT_FALSE(saw_depth);
}

TEST(ControlApp, DynamicSwitchesOnTightDeadline)
{
    AppConfig cfg;
    cfg.mode = RuntimeMode::Dynamic;
    cfg.modelDepth = 14;
    cfg.smallModelDepth = 6;
    cfg.deadlineSafetyFactor = 10.0;
    AppHarness h(cfg);

    // Far obstacle: big model runs.
    for (int i = 0; i < 60 && h.app->inferenceCount() < 2; ++i)
        h.period(10 * kMegaCycles, /*depth=*/30.0);
    ASSERT_GE(h.app->inferenceCount(), 2u);
    EXPECT_EQ(h.app->records().back().modelDepth, 14);
    EXPECT_FALSE(h.app->records().back().usedArgmax);

    // Near obstacle: the deadline collapses; small model + argmax.
    size_t before = h.app->inferenceCount();
    for (int i = 0; i < 60 && h.app->inferenceCount() < before + 2; ++i)
        h.period(10 * kMegaCycles, /*depth=*/2.0);
    ASSERT_GE(h.app->inferenceCount(), before + 2);
    EXPECT_EQ(h.app->records().back().modelDepth, 6);
    EXPECT_TRUE(h.app->records().back().usedArgmax);
}

TEST(ControlApp, DynamicFasterIterationOnSmallModel)
{
    AppConfig cfg;
    cfg.mode = RuntimeMode::Dynamic;
    AppHarness h(cfg);
    // Warm up and collect latencies at far and near depths.
    for (int i = 0; i < 80 && h.app->inferenceCount() < 3; ++i)
        h.period(10 * kMegaCycles, 30.0);
    double lat_big =
        double(h.app->records().back().requestToCommand()) / 1e9;
    size_t before = h.app->inferenceCount();
    for (int i = 0; i < 80 && h.app->inferenceCount() < before + 3; ++i)
        h.period(10 * kMegaCycles, 2.0);
    double lat_small =
        double(h.app->records().back().requestToCommand()) / 1e9;
    EXPECT_LT(lat_small, lat_big);
}

TEST(ControlApp, AccelBusyOnlyDuringInference)
{
    AppConfig cfg;
    AppHarness h(cfg);
    for (int i = 0; i < 40 && h.app->inferenceCount() < 2; ++i)
        h.period();
    const soc::SocStats &s = h.sim->stats();
    EXPECT_GT(s.accelBusyCycles, 0u);
    EXPECT_LT(s.accelBusyCycles, s.totalCycles);
    // With waits dominating, activity factor is well under 50%.
    EXPECT_LT(s.accelActivityFactor(), 0.5);
}

TEST(ControlApp, WorkloadNames)
{
    AppConfig cfg;
    AppHarness a(cfg);
    EXPECT_EQ(a.app->workloadName(), "trailnav-static-ResNet14");
    cfg.mode = RuntimeMode::Dynamic;
    AppHarness b(cfg);
    EXPECT_EQ(b.app->workloadName(), "trailnav-dynamic-ResNet14/ResNet6");
}
