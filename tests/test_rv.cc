/**
 * @file
 * Tests for the RV32IM substrate: decoder, functional core, assembler,
 * and the Rocket/BOOM timing models.
 */

#include <gtest/gtest.h>

#include "rv/assembler.hh"
#include "rv/core.hh"
#include "rv/insn.hh"
#include "rv/timing.hh"

using namespace rose;
using namespace rose::rv;

namespace {

/** Assemble, run to ecall, return the core for inspection. */
Core
runProgram(const std::string &src, uint64_t max_insns = 1'000'000)
{
    Core core;
    Program p = assemble(src);
    core.loadProgram(p.words);
    core.run(max_insns);
    EXPECT_EQ(core.stopReason(), StopReason::Ecall);
    return core;
}

} // namespace

// ---------------------------------------------------------------- decode

TEST(Decode, AddiEncoding)
{
    // addi x1, x2, -3  -> imm=0xffd rs1=2 f3=0 rd=1 op=0x13
    uint32_t raw = (0xffdu << 20) | (2u << 15) | (0u << 12) | (1u << 7) |
                   0x13;
    Insn i = decode(raw);
    EXPECT_EQ(i.op, Op::Addi);
    EXPECT_EQ(i.rd, 1);
    EXPECT_EQ(i.rs1, 2);
    EXPECT_EQ(i.imm, -3);
    EXPECT_EQ(i.opClass(), OpClass::IntAlu);
}

TEST(Decode, IllegalOpcode)
{
    EXPECT_EQ(decode(0xffffffffu).op, Op::Illegal);
    EXPECT_EQ(decode(0).op, Op::Illegal);
}

TEST(Decode, OpClasses)
{
    EXPECT_EQ(decode(0x00000063).opClass(), OpClass::Branch); // beq
    EXPECT_EQ(decode(0x0000006f).opClass(), OpClass::Jump);   // jal
    EXPECT_EQ(decode(0x00002003).opClass(), OpClass::Load);   // lw
    EXPECT_EQ(decode(0x00002023).opClass(), OpClass::Store);  // sw
    EXPECT_EQ(decode(0x02000033).opClass(), OpClass::Mul);    // mul
    EXPECT_EQ(decode(0x02004033).opClass(), OpClass::Div);    // div
}

// ------------------------------------------------------------ functional

TEST(Core, ArithmeticBasics)
{
    Core c = runProgram(R"(
        li a0, 10
        li a1, 32
        add a2, a0, a1
        sub a3, a1, a0
        ecall
    )");
    EXPECT_EQ(c.reg(12), 42u);
    EXPECT_EQ(c.reg(13), 22u);
}

TEST(Core, X0IsHardwiredZero)
{
    Core c = runProgram(R"(
        li x0, 55
        addi x0, x0, 1
        mv a0, x0
        ecall
    )");
    EXPECT_EQ(c.reg(10), 0u);
}

TEST(Core, LargeImmediateLi)
{
    Core c = runProgram(R"(
        li a0, 0x12345678
        li a1, -100000
        ecall
    )");
    EXPECT_EQ(c.reg(10), 0x12345678u);
    EXPECT_EQ(int32_t(c.reg(11)), -100000);
}

TEST(Core, LoadStoreRoundTrip)
{
    Core c = runProgram(R"(
        li a0, 0x1000
        li a1, 0xdeadbeef
        sw a1, 0(a0)
        lw a2, 0(a0)
        lhu a3, 0(a0)
        lbu a4, 3(a0)
        lb a5, 3(a0)
        ecall
    )");
    EXPECT_EQ(c.reg(12), 0xdeadbeefu);
    EXPECT_EQ(c.reg(13), 0xbeefu);
    EXPECT_EQ(c.reg(14), 0xdeu);
    EXPECT_EQ(int32_t(c.reg(15)), int32_t(int8_t(0xde)));
}

TEST(Core, FibonacciLoop)
{
    Core c = runProgram(R"(
        li a0, 10      # n
        li a1, 0       # fib(0)
        li a2, 1       # fib(1)
    loop:
        beqz a0, done
        add a3, a1, a2
        mv a1, a2
        mv a2, a3
        addi a0, a0, -1
        j loop
    done:
        ecall
    )");
    EXPECT_EQ(c.reg(11), 55u); // fib(10)
}

TEST(Core, FunctionCallReturn)
{
    Core c = runProgram(R"(
        li a0, 5
        call double_it
        ecall
    double_it:
        slli a0, a0, 1
        ret
    )");
    EXPECT_EQ(c.reg(10), 10u);
}

TEST(Core, MulDivFamily)
{
    Core c = runProgram(R"(
        li a0, -6
        li a1, 7
        mul a2, a0, a1
        div a3, a0, a1
        rem a4, a0, a1
        li a5, 100000
        mulhu a6, a5, a5
        ecall
    )");
    EXPECT_EQ(int32_t(c.reg(12)), -42);
    EXPECT_EQ(int32_t(c.reg(13)), 0);
    EXPECT_EQ(int32_t(c.reg(14)), -6);
    EXPECT_EQ(c.reg(16), uint32_t((100000ull * 100000ull) >> 32));
}

TEST(Core, DivisionByZeroPerSpec)
{
    Core c = runProgram(R"(
        li a0, 17
        li a1, 0
        div a2, a0, a1
        divu a3, a0, a1
        rem a4, a0, a1
        ecall
    )");
    EXPECT_EQ(c.reg(12), 0xffffffffu);
    EXPECT_EQ(c.reg(13), 0xffffffffu);
    EXPECT_EQ(c.reg(14), 17u);
}

TEST(Core, ShiftsAndComparisons)
{
    Core c = runProgram(R"(
        li a0, -8
        srai a1, a0, 1
        srli a2, a0, 28
        slti a3, a0, 0
        sltiu a4, a0, 1
        ecall
    )");
    EXPECT_EQ(int32_t(c.reg(11)), -4);
    EXPECT_EQ(c.reg(12), 0xfu);
    EXPECT_EQ(c.reg(13), 1u);
    EXPECT_EQ(c.reg(14), 0u); // unsigned -8 is huge
}

TEST(Core, BadAddressStops)
{
    Core c;
    Program p = assemble(R"(
        li a0, 0x7fffffff
        lw a1, 0(a0)
        ecall
    )");
    c.loadProgram(p.words);
    c.run();
    EXPECT_EQ(c.stopReason(), StopReason::BadAddress);
}

TEST(Core, MmioWindowDispatch)
{
    Core c;
    uint32_t last_write_off = 0, last_write_val = 0;
    c.setMmioWindow(
        0x40000000u, 0x100,
        [](uint32_t off) { return off + 0x100u; },
        [&](uint32_t off, uint32_t v) {
            last_write_off = off;
            last_write_val = v;
        });
    Program p = assemble(R"(
        lui a0, 0x40000
        lw a1, 8(a0)
        li a2, 77
        sw a2, 12(a0)
        ecall
    )");
    c.loadProgram(p.words);
    c.run();
    EXPECT_EQ(c.stopReason(), StopReason::Ecall);
    EXPECT_EQ(c.reg(11), 0x108u);
    EXPECT_EQ(last_write_off, 12u);
    EXPECT_EQ(last_write_val, 77u);
}

TEST(Core, InstretCounts)
{
    Core c = runProgram(R"(
        nop
        nop
        nop
        ecall
    )");
    EXPECT_EQ(c.instret(), 4u);
}

// ------------------------------------------------------------- assembler

TEST(Assembler, SymbolsResolve)
{
    Program p = assemble(R"(
    start:
        nop
    mid:
        nop
    end:
        ecall
    )");
    EXPECT_EQ(p.symbols.at("start"), 0u);
    EXPECT_EQ(p.symbols.at("mid"), 4u);
    EXPECT_EQ(p.symbols.at("end"), 8u);
    EXPECT_EQ(p.words.size(), 3u);
}

TEST(Assembler, BackwardAndForwardBranches)
{
    // Encoded branches must round-trip through the decoder with the
    // right displacement.
    Program p = assemble(R"(
    top:
        beq a0, a1, bottom
        j top
    bottom:
        ecall
    )");
    Insn beq = decode(p.words[0]);
    EXPECT_EQ(beq.op, Op::Beq);
    EXPECT_EQ(beq.imm, 8);
    Insn j = decode(p.words[1]);
    EXPECT_EQ(j.op, Op::Jal);
    EXPECT_EQ(j.imm, -4);
}

TEST(Assembler, WordDirective)
{
    Program p = assemble(R"(
        .word 0x11223344, 42
    )");
    EXPECT_EQ(p.words[0], 0x11223344u);
    EXPECT_EQ(p.words[1], 42u);
}

TEST(Assembler, BaseAddressAffectsSymbols)
{
    Program p = assemble("foo: nop\n", 0x1000);
    EXPECT_EQ(p.symbols.at("foo"), 0x1000u);
    EXPECT_EQ(p.base, 0x1000u);
}

TEST(Assembler, PseudoExpansions)
{
    Program p = assemble(R"(
        nop
        mv a0, a1
        neg a2, a3
        not a4, a5
        seqz a6, a7
        snez t0, t1
    )");
    EXPECT_EQ(decode(p.words[0]).op, Op::Addi);
    EXPECT_EQ(decode(p.words[1]).op, Op::Addi);
    EXPECT_EQ(decode(p.words[2]).op, Op::Sub);
    EXPECT_EQ(decode(p.words[3]).op, Op::Xori);
    EXPECT_EQ(decode(p.words[4]).op, Op::Sltiu);
    EXPECT_EQ(decode(p.words[5]).op, Op::Sltu);
}

TEST(AssemblerDeathTest, ErrorsAreFatal)
{
    EXPECT_EXIT(assemble("bogus a0, a1\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
    EXPECT_EXIT(assemble("addi a0, a1\n"),
                ::testing::ExitedWithCode(1), "missing");
    EXPECT_EXIT(assemble("j nowhere\n"),
                ::testing::ExitedWithCode(1), "label");
}

// ---------------------------------------------------------------- timing

namespace {

/** Run a program on the functional core, feeding a timing model. */
Cycles
timeProgram(const std::string &src, TimingModel &tm,
            uint64_t max_insns = 2'000'000)
{
    Core core;
    Program p = assemble(src);
    core.loadProgram(p.words);
    uint64_t n = 0;
    while (core.stopReason() == StopReason::Running && n < max_insns) {
        tm.retire(core.step());
        ++n;
    }
    EXPECT_EQ(core.stopReason(), StopReason::Ecall);
    return tm.cycles();
}

const char *kAluLoop = R"(
        li a0, 10000
        li a1, 0
    loop:
        addi a1, a1, 3
        xori a2, a1, 5
        and a3, a2, a1
        or a4, a3, a2
        addi a0, a0, -1
        bnez a0, loop
        ecall
)";

} // namespace

TEST(Timing, BoomBeatsRocketOnAlu)
{
    RocketTiming rocket;
    BoomTiming boom;
    Cycles cr = timeProgram(kAluLoop, rocket);
    Cycles cb = timeProgram(kAluLoop, boom);
    EXPECT_LT(cb, cr);
    // Rocket is scalar: IPC can approach but not exceed 1.
    EXPECT_LE(rocket.ipc(), 1.0);
    // BOOM is 3-wide: this loop should sustain IPC well above 1.
    EXPECT_GT(boom.ipc(), 1.3);
}

TEST(Timing, DivIsExpensive)
{
    const char *div_loop = R"(
        li a0, 1000
        li a1, 7
    loop:
        div a2, a0, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )";
    RocketTiming slow;
    RocketTiming fast;
    Cycles with_div = timeProgram(div_loop, slow);
    Cycles without = timeProgram(kAluLoop, fast);
    // 1000 divides at ~32 cycles each dominate a 10k ALU-op loop run.
    double div_cpi = double(with_div) / double(slow.stats().insns);
    double alu_cpi = double(without) / double(fast.stats().insns);
    EXPECT_GT(div_cpi, 5.0 * alu_cpi);
}

TEST(Timing, MispredictsCost)
{
    // A data-dependent alternating branch defeats the BTFN predictor
    // roughly half the time in the forward direction.
    const char *branchy = R"(
        li a0, 20000
        li a1, 0
    loop:
        andi a2, a0, 1
        beqz a2, skip
        addi a1, a1, 1
    skip:
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )";
    RocketTiming tm;
    timeProgram(branchy, tm);
    EXPECT_GT(tm.stats().mispredicts, 5000u);
    EXPECT_LT(tm.stats().mispredicts, tm.stats().branches);
}

TEST(Timing, CacheMissesChargeDram)
{
    // Stride through 1 MiB with 64 B lines: every access misses.
    const char *strider = R"(
        li a0, 0x4000     # base
        li a1, 4096       # accesses
    loop:
        lw a2, 0(a0)
        addi a0, a0, 64
        addi a1, a1, -1
        bnez a1, loop
        ecall
    )";
    RocketTiming tm;
    Cycles c = timeProgram(strider, tm);
    EXPECT_GE(tm.stats().cacheMisses, 4000u);
    // Each miss pays ~80 cycles.
    EXPECT_GT(c, 4000u * 80u);
}

TEST(Timing, MmioPenaltyApplied)
{
    Core core;
    core.setMmioWindow(
        0x40000000u, 0x100, [](uint32_t) { return 0u; },
        [](uint32_t, uint32_t) {});
    Program p = assemble(R"(
        lui a0, 0x40000
        lw a1, 0(a0)
        lw a2, 0(a0)
        ecall
    )");
    core.loadProgram(p.words);
    RocketTiming tm;
    while (core.stopReason() == StopReason::Running)
        tm.retire(core.step());
    EXPECT_EQ(tm.stats().mmioAccesses, 2u);
    EXPECT_GT(tm.cycles(), 2u * TimingParams{}.mmioLatency);
}

TEST(Timing, ResetClearsState)
{
    RocketTiming tm;
    timeProgram(kAluLoop, tm);
    EXPECT_GT(tm.cycles(), 0u);
    tm.reset();
    EXPECT_EQ(tm.cycles(), 0u);
    EXPECT_EQ(tm.stats().insns, 0u);
}

TEST(Timing, FactoryNames)
{
    EXPECT_EQ(makeTimingModel("rocket")->modelName(), "rocket");
    EXPECT_EQ(makeTimingModel("boom")->modelName(), "boom");
}

TEST(Timing, SameWorkSameFunctionalResult)
{
    // Timing models must not perturb architectural state: run the same
    // program under both and compare a register.
    auto run = [&](TimingModel &tm) {
        Core core;
        Program p = assemble(kAluLoop);
        core.loadProgram(p.words);
        while (core.stopReason() == StopReason::Running)
            tm.retire(core.step());
        return core.reg(14);
    };
    RocketTiming r;
    BoomTiming b;
    EXPECT_EQ(run(r), run(b));
}

// --------------------------------------------- asm/decode round trips

namespace {

struct RoundTrip
{
    const char *source;
    Op op;
    int rd, rs1, rs2;
    int32_t imm;
};

} // namespace

class AsmDecodeRoundTrip : public ::testing::TestWithParam<RoundTrip>
{
};

TEST_P(AsmDecodeRoundTrip, EncodesAndDecodes)
{
    const RoundTrip &rt = GetParam();
    Program p = assemble(rt.source);
    ASSERT_EQ(p.words.size(), 1u) << rt.source;
    Insn i = decode(p.words[0]);
    EXPECT_EQ(i.op, rt.op) << rt.source;
    if (rt.rd >= 0) {
        EXPECT_EQ(int(i.rd), rt.rd) << rt.source;
    }
    if (rt.rs1 >= 0) {
        EXPECT_EQ(int(i.rs1), rt.rs1) << rt.source;
    }
    if (rt.rs2 >= 0) {
        EXPECT_EQ(int(i.rs2), rt.rs2) << rt.source;
    }
    if (rt.imm != INT32_MIN) {
        EXPECT_EQ(i.imm, rt.imm) << rt.source;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, AsmDecodeRoundTrip,
    ::testing::Values(
        RoundTrip{"addi a0, a1, -42\n", Op::Addi, 10, 11, -1, -42},
        RoundTrip{"slti t0, t1, 100\n", Op::Slti, 5, 6, -1, 100},
        RoundTrip{"sltiu s0, s1, 2047\n", Op::Sltiu, 8, 9, -1, 2047},
        RoundTrip{"xori a2, a3, 255\n", Op::Xori, 12, 13, -1, 255},
        RoundTrip{"ori a4, a5, 15\n", Op::Ori, 14, 15, -1, 15},
        RoundTrip{"andi a6, a7, 7\n", Op::Andi, 16, 17, -1, 7},
        RoundTrip{"slli t2, t3, 5\n", Op::Slli, 7, 28, -1, 5},
        RoundTrip{"srli t4, t5, 31\n", Op::Srli, 29, 30, -1, 31},
        RoundTrip{"srai t6, zero, 1\n", Op::Srai, 31, 0, -1, 1},
        RoundTrip{"add a0, a1, a2\n", Op::Add, 10, 11, 12, INT32_MIN},
        RoundTrip{"sub s2, s3, s4\n", Op::Sub, 18, 19, 20, INT32_MIN},
        RoundTrip{"sll s5, s6, s7\n", Op::Sll, 21, 22, 23, INT32_MIN},
        RoundTrip{"slt s8, s9, s10\n", Op::Slt, 24, 25, 26, INT32_MIN},
        RoundTrip{"sltu s11, ra, sp\n", Op::Sltu, 27, 1, 2, INT32_MIN},
        RoundTrip{"xor gp, tp, t0\n", Op::Xor, 3, 4, 5, INT32_MIN},
        RoundTrip{"srl a0, a1, a2\n", Op::Srl, 10, 11, 12, INT32_MIN},
        RoundTrip{"sra a0, a1, a2\n", Op::Sra, 10, 11, 12, INT32_MIN},
        RoundTrip{"or a0, a1, a2\n", Op::Or, 10, 11, 12, INT32_MIN},
        RoundTrip{"and a0, a1, a2\n", Op::And, 10, 11, 12, INT32_MIN},
        RoundTrip{"mul a0, a1, a2\n", Op::Mul, 10, 11, 12, INT32_MIN},
        RoundTrip{"mulh a0, a1, a2\n", Op::Mulh, 10, 11, 12, INT32_MIN},
        RoundTrip{"mulhsu a0, a1, a2\n", Op::Mulhsu, 10, 11, 12,
                  INT32_MIN},
        RoundTrip{"mulhu a0, a1, a2\n", Op::Mulhu, 10, 11, 12,
                  INT32_MIN},
        RoundTrip{"div a0, a1, a2\n", Op::Div, 10, 11, 12, INT32_MIN},
        RoundTrip{"divu a0, a1, a2\n", Op::Divu, 10, 11, 12, INT32_MIN},
        RoundTrip{"rem a0, a1, a2\n", Op::Rem, 10, 11, 12, INT32_MIN},
        RoundTrip{"remu a0, a1, a2\n", Op::Remu, 10, 11, 12, INT32_MIN},
        RoundTrip{"lb a0, -8(sp)\n", Op::Lb, 10, 2, -1, -8},
        RoundTrip{"lh a0, 2(sp)\n", Op::Lh, 10, 2, -1, 2},
        RoundTrip{"lw a0, 2047(sp)\n", Op::Lw, 10, 2, -1, 2047},
        RoundTrip{"lbu a0, 0(sp)\n", Op::Lbu, 10, 2, -1, 0},
        RoundTrip{"lhu a0, 16(sp)\n", Op::Lhu, 10, 2, -1, 16},
        RoundTrip{"sb a0, -2048(sp)\n", Op::Sb, -1, 2, 10, -2048},
        RoundTrip{"sh a0, 4(sp)\n", Op::Sh, -1, 2, 10, 4},
        RoundTrip{"sw a0, 124(sp)\n", Op::Sw, -1, 2, 10, 124},
        RoundTrip{"lui a0, 0x12345\n", Op::Lui, 10, -1, -1,
                  int32_t(0x12345000)},
        RoundTrip{"auipc a0, 1\n", Op::Auipc, 10, -1, -1, 0x1000},
        RoundTrip{"jalr a0, 8(a1)\n", Op::Jalr, 10, 11, -1, 8},
        RoundTrip{"fence\n", Op::Fence, -1, -1, -1, INT32_MIN},
        RoundTrip{"ecall\n", Op::Ecall, -1, -1, -1, INT32_MIN},
        RoundTrip{"ebreak\n", Op::Ebreak, -1, -1, -1, INT32_MIN}));

TEST(AsmDecode, BranchDisplacementsAllOps)
{
    // All branch mnemonics encode/decode with the same displacement.
    for (const char *b : {"beq", "bne", "blt", "bge", "bltu", "bgeu"}) {
        std::string src = std::string("top: nop\n") + b +
                          " a0, a1, top\n";
        Program p = assemble(src);
        Insn i = decode(p.words[1]);
        EXPECT_EQ(i.imm, -4) << b;
        EXPECT_EQ(i.rs1, 10) << b;
        EXPECT_EQ(i.rs2, 11) << b;
    }
}

TEST(AsmDecode, FunctionalSmokeAllAluOps)
{
    // Run a program exercising every ALU/M op and check a checksum.
    Core c = runProgram(R"(
        li a0, 12
        li a1, 5
        add t0, a0, a1      # 17
        sub t1, a0, a1      # 7
        sll t2, a1, a0      # 5 << 12 = 20480
        xor t3, a0, a1      # 9
        or  t4, a0, a1      # 13
        and t5, a0, a1      # 4
        mul t6, a0, a1      # 60
        div s2, a0, a1      # 2
        rem s3, a0, a1      # 2
        add s4, t0, t1
        add s4, s4, t2
        add s4, s4, t3
        add s4, s4, t4
        add s4, s4, t5
        add s4, s4, t6
        add s4, s4, s2
        add s4, s4, s3
        ecall
    )");
    EXPECT_EQ(c.reg(20), 17u + 7 + 20480 + 9 + 13 + 4 + 60 + 2 + 2);
}
