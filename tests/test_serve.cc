/**
 * @file
 * Tests of the mission-service daemon (src/serve/).
 *
 * Four layers:
 *  - protocol codecs: every request/response round-trips byte-exactly;
 *  - framing: seeded fuzz of MessageBuffer (mirrors the bridge's
 *    test_framing_fuzz harness) — arbitrary bytes never crash, hang,
 *    or allocate past the payload bound, and poison sticks;
 *  - served-result determinism: a mission submitted over TCP returns
 *    a trajectory CSV whose FNV-1a hash is bit-identical to the same
 *    spec run locally via runMission(), including under 4 concurrent
 *    clients (the golden-trace acceptance criterion);
 *  - admission control & lifecycle: queue-full and per-client-cap
 *    shedding, cancellation, client disconnect mid-mission, and clean
 *    shutdown with in-flight jobs.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bridge/transport.hh"

#include "core/batch.hh"
#include "core/experiment.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/hash.hh"
#include "util/rng.hh"

using namespace rose;
using namespace rose::serve;

namespace {

/** The golden canonical mission (mirrors test_golden.cc). */
core::MissionSpec
canonicalSpec(const std::string &soc, double sim_seconds = 10.0)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = soc;
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = 1;
    spec.maxSimSeconds = sim_seconds;
    return spec;
}

/** A cheap mission for lifecycle tests (~0.1 s of wall time). */
core::MissionSpec
quickSpec(uint64_t seed = 1)
{
    core::MissionSpec spec = canonicalSpec("A", 2.0);
    spec.seed = seed;
    return spec;
}

uint64_t
localTrajectoryHash(const core::MissionSpec &spec)
{
    core::MissionResult r = core::runMission(spec);
    return fnv1a(core::trajectoryCsvString(r));
}

/** Poll a predicate over server stats until it holds or we time out. */
template <typename Pred>
bool
eventually(MissionServer &server, Pred pred, int timeout_ms = 10000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (pred(server.stats()))
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

} // namespace

// ===================================================== protocol codecs

TEST(ServeProto, SpecCodecRoundTripsEveryField)
{
    core::MissionSpec spec;
    spec.world = "s-shape";
    spec.vehicle = "rover";
    spec.socName = "C";
    spec.modelDepth = 26;
    spec.velocity = 7.25;
    spec.initialYawDeg = -15.5;
    spec.syncGranularity = 12345678;
    spec.mode = runtime::RuntimeMode::Dynamic;
    spec.seed = 0xdeadbeefcafeULL;
    spec.maxSimSeconds = 42.5;
    spec.degradedMode = true;
    spec.faults.enabled = true;
    spec.faults.dropProb = 0.125;
    spec.faults.corruptProb = 0.0625;
    spec.faults.reorderProb = 0.5;
    spec.faults.delayProb = 0.25;
    spec.faults.delayOpsMin = 3;
    spec.faults.delayOpsMax = 17;
    spec.faults.protectSyncPackets = false;
    spec.faults.seed = 0x1234;

    core::MissionSpec back =
        decodeSubmitMission(encodeSubmitMission(spec));
    EXPECT_EQ(back.world, spec.world);
    EXPECT_EQ(back.vehicle, spec.vehicle);
    EXPECT_EQ(back.socName, spec.socName);
    EXPECT_EQ(back.modelDepth, spec.modelDepth);
    EXPECT_EQ(back.velocity, spec.velocity);
    EXPECT_EQ(back.initialYawDeg, spec.initialYawDeg);
    EXPECT_EQ(back.syncGranularity, spec.syncGranularity);
    EXPECT_EQ(back.mode, spec.mode);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.maxSimSeconds, spec.maxSimSeconds);
    EXPECT_EQ(back.degradedMode, spec.degradedMode);
    EXPECT_EQ(back.faults.enabled, spec.faults.enabled);
    EXPECT_EQ(back.faults.dropProb, spec.faults.dropProb);
    EXPECT_EQ(back.faults.corruptProb, spec.faults.corruptProb);
    EXPECT_EQ(back.faults.reorderProb, spec.faults.reorderProb);
    EXPECT_EQ(back.faults.delayProb, spec.faults.delayProb);
    EXPECT_EQ(back.faults.delayOpsMin, spec.faults.delayOpsMin);
    EXPECT_EQ(back.faults.delayOpsMax, spec.faults.delayOpsMax);
    EXPECT_EQ(back.faults.protectSyncPackets,
              spec.faults.protectSyncPackets);
    EXPECT_EQ(back.faults.seed, spec.faults.seed);
}

TEST(ServeProto, ReplyCodecsRoundTrip)
{
    SubmitOkReply ok{42, 7};
    SubmitOkReply ok2 = decodeSubmitOk(encodeSubmitOk(ok));
    EXPECT_EQ(ok2.jobId, 42u);
    EXPECT_EQ(ok2.queuePosition, 7u);

    RejectedReply rej{RejectReason::QueueFull, "queue depth reached"};
    RejectedReply rej2 = decodeRejected(encodeRejected(rej));
    EXPECT_EQ(rej2.reason, RejectReason::QueueFull);
    EXPECT_EQ(rej2.detail, rej.detail);

    StatusInfo st;
    st.jobId = 9;
    st.state = JobState::Running;
    st.queuePosition = 3;
    st.queueWaitMs = 12.5;
    st.serviceMs = 99.25;
    StatusInfo st2 = decodeStatusReply(encodeStatusReply(st));
    EXPECT_EQ(st2.jobId, 9u);
    EXPECT_EQ(st2.state, JobState::Running);
    EXPECT_EQ(st2.queuePosition, 3u);
    EXPECT_EQ(st2.queueWaitMs, 12.5);
    EXPECT_EQ(st2.serviceMs, 99.25);

    CancelInfo c{11, CancelOutcome::TooLate};
    CancelInfo c2 = decodeCancelReply(encodeCancelReply(c));
    EXPECT_EQ(c2.jobId, 11u);
    EXPECT_EQ(c2.outcome, CancelOutcome::TooLate);

    ServerStatsData s;
    s.submitted = 100;
    s.accepted = 90;
    s.completed = 80;
    s.failed = 5;
    s.cancelled = 5;
    s.rejectedQueueFull = 7;
    s.rejectedClientCap = 2;
    s.rejectedShutdown = 1;
    s.malformed = 3;
    s.queued = 4;
    s.running = 2;
    s.workers = 8;
    s.queueCapacity = 16;
    s.connectionsAccepted = 12;
    s.connectionsOpen = 6;
    s.totalQueueWaitMs = 1234.5;
    s.maxQueueWaitMs = 250.25;
    s.totalServiceMs = 9876.5;
    s.maxServiceMs = 500.125;
    ServerStatsData s2 = decodeStatsReply(encodeStatsReply(s));
    EXPECT_EQ(s2.submitted, s.submitted);
    EXPECT_EQ(s2.rejectedQueueFull, s.rejectedQueueFull);
    EXPECT_EQ(s2.rejectedClientCap, s.rejectedClientCap);
    EXPECT_EQ(s2.malformed, s.malformed);
    EXPECT_EQ(s2.queued, s.queued);
    EXPECT_EQ(s2.connectionsAccepted, s.connectionsAccepted);
    EXPECT_EQ(s2.totalQueueWaitMs, s.totalQueueWaitMs);
    EXPECT_EQ(s2.maxServiceMs, s.maxServiceMs);

    EXPECT_EQ(decodeQueryStatus(encodeQueryStatus(77)), 77u);
    EXPECT_EQ(decodeFetchResult(encodeFetchResult(78)), 78u);
    EXPECT_EQ(decodeCancelMission(encodeCancelMission(79)), 79u);
    EXPECT_TRUE(decodeShutdown(encodeShutdown(true)));
    EXPECT_FALSE(decodeShutdown(encodeShutdown(false)));
    EXPECT_EQ(decodeErrorReply(encodeErrorReply("boom")), "boom");
}

TEST(ServeProto, ResultReplyRoundTripsTrajectoryBytes)
{
    ServedResult r;
    r.completed = true;
    r.status = 0;
    r.missionTime = 9.99;
    r.collisions = 3;
    r.avgSpeed = 2.5;
    r.maxSpeed = 3.75;
    r.distanceTravelled = 25.0;
    r.inferences = 500;
    r.avgInferenceLatency = 0.015;
    r.energyJoules = 1.25;
    r.avgPowerWatts = 0.125;
    r.simulatedCycles = 10'000'000'000ULL;
    r.trajectorySamples = 2;
    r.degradedIntervals = 1;
    r.trajectoryCsv = "t,x\n0.01,1.25\n0.02,2.5\n";
    r.queueWaitMs = 5.5;
    r.serviceMs = 300.25;

    ResultData d{21, r};
    ResultData d2 = decodeResultReply(encodeResultReply(d));
    EXPECT_EQ(d2.jobId, 21u);
    EXPECT_EQ(d2.result.trajectoryCsv, r.trajectoryCsv);
    EXPECT_EQ(fnv1a(d2.result.trajectoryCsv), fnv1a(r.trajectoryCsv));
    EXPECT_EQ(d2.result.completed, r.completed);
    EXPECT_EQ(d2.result.collisions, r.collisions);
    EXPECT_EQ(d2.result.simulatedCycles, r.simulatedCycles);
    EXPECT_EQ(d2.result.queueWaitMs, r.queueWaitMs);
    EXPECT_EQ(d2.result.serviceMs, r.serviceMs);
}

TEST(ServeProto, ResultReplyCarriesTerminalState)
{
    ServedResult r;
    r.completed = false;
    r.failureReason = "mission threw";

    ResultData failed{5, r, JobState::Failed};
    ResultData back = decodeResultReply(encodeResultReply(failed));
    EXPECT_EQ(back.state, JobState::Failed);
    EXPECT_EQ(back.result.failureReason, "mission threw");

    ResultData done{6, ServedResult{}};
    EXPECT_EQ(decodeResultReply(encodeResultReply(done)).state,
              JobState::Done);

    // Non-terminal state bytes are rejected, not trusted.
    Message m = encodeResultReply(done);
    m.payload[8] = uint8_t(JobState::Running);
    EXPECT_THROW(decodeResultReply(m), ProtocolError);
}

TEST(ServeProto, OversizedResultDemotedToFailureNotAbort)
{
    // A trajectory CSV beyond the wire budget must become a
    // well-formed failure — never reach the encoder's assert.
    ServedResult big;
    big.completed = true;
    big.trajectoryCsv.assign(kMaxTrajectoryCsvBytes + 1, 'x');
    EXPECT_FALSE(fitResultToWire(big));
    EXPECT_TRUE(big.trajectoryCsv.empty());
    EXPECT_FALSE(big.failureReason.empty());
    // The demoted result encodes cleanly.
    Message m = encodeResultReply({1, big, JobState::Failed});
    EXPECT_EQ(decodeResultReply(m).state, JobState::Failed);

    // A result exactly at the budget is untouched and encodes.
    ServedResult fits;
    fits.trajectoryCsv.assign(kMaxTrajectoryCsvBytes, 'y');
    EXPECT_TRUE(fitResultToWire(fits));
    EXPECT_EQ(fits.trajectoryCsv.size(), kMaxTrajectoryCsvBytes);
    std::vector<uint8_t> wire;
    serializeMessage(encodeResultReply({2, fits}), wire);
    EXPECT_LE(wire.size(),
              Message::kHeaderBytes + kMaxServePayloadBytes);
}

TEST(ServeProto, MalformedPayloadsThrowNotCrash)
{
    // Truncated SubmitMission payload.
    Message m = encodeSubmitMission(core::MissionSpec{});
    m.payload.resize(m.payload.size() / 2);
    EXPECT_THROW(decodeSubmitMission(m), std::exception);

    // Wrong type for a decoder.
    EXPECT_THROW(decodeQueryStatus(encodeServerStats()),
                 ProtocolError);

    // Out-of-range enum byte.
    Message rej = encodeRejected({RejectReason::QueueFull, ""});
    rej.payload[0] = 0x7f;
    EXPECT_THROW(decodeRejected(rej), ProtocolError);

    // Oversized string length field.
    Message err = encodeErrorReply("x");
    err.payload[0] = 0xff;
    err.payload[1] = 0xff;
    err.payload[2] = 0xff;
    err.payload[3] = 0x7f;
    EXPECT_THROW(decodeErrorReply(err), std::exception);
}

// ============================================================= framing

namespace {

/** Push a stream through a MessageBuffer in random chunks, draining
 *  after every append (mirrors test_framing_fuzz::pushChunked). */
void
pushChunkedServe(MessageBuffer &mb, const std::vector<uint8_t> &stream,
                 Rng &rng, std::vector<Message> &decoded)
{
    bool dead = false;
    size_t pos = 0;
    while (pos < stream.size()) {
        size_t chunk = 1 + rng.uniformInt(257);
        if (chunk > stream.size() - pos)
            chunk = stream.size() - pos;
        mb.append(stream.data() + pos, chunk);
        pos += chunk;

        size_t guard = stream.size() / Message::kHeaderBytes + 2;
        for (;;) {
            ASSERT_GT(guard--, 0u) << "decoder loop did not terminate";
            Message m;
            std::string err;
            FrameStatus st = mb.next(m, &err);
            if (st == FrameStatus::Ok) {
                ASSERT_FALSE(dead)
                    << "Ok after Malformed: poison did not stick";
                ASSERT_TRUE(isValidMsgType(uint8_t(m.type)));
                ASSERT_LE(m.payload.size(), kMaxServePayloadBytes);
                decoded.push_back(std::move(m));
                continue;
            }
            if (st == FrameStatus::Malformed) {
                EXPECT_FALSE(err.empty());
                dead = true;
            }
            break;
        }
    }
}

} // namespace

TEST(ServeFraming, RandomBytesNeverCrashOrHang)
{
    for (uint64_t seed = 1; seed <= 200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 7919);
        std::vector<uint8_t> noise(rng.uniformInt(4096));
        for (uint8_t &b : noise)
            b = uint8_t(rng.uniformInt(256));
        MessageBuffer mb;
        std::vector<Message> decoded;
        pushChunkedServe(mb, noise, rng, decoded);
        if (HasFatalFailure())
            return;
    }
}

TEST(ServeFraming, RoundTripSurvivesArbitraryFragmentation)
{
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 104729);

        core::MissionSpec spec;
        spec.seed = rng.next();
        spec.velocity = rng.uniform(0.5, 10.0);
        ServedResult sr;
        sr.trajectoryCsv = std::string(rng.uniformInt(5000), 'x');
        sr.collisions = rng.next();

        std::vector<Message> sent{
            encodeSubmitMission(spec),
            encodeQueryStatus(rng.next()),
            encodeFetchResult(rng.next()),
            encodeCancelMission(rng.next()),
            encodeServerStats(),
            encodeShutdown(rng.uniformInt(2) == 0),
            encodeSubmitOk({rng.next(), uint32_t(rng.uniformInt(100))}),
            encodeRejected({RejectReason::ClientCap, "cap"}),
            encodeResultReply({rng.next(), sr}),
            encodeShutdownReply(),
            encodeErrorReply("some error"),
        };
        std::vector<uint8_t> stream;
        for (const Message &m : sent)
            serializeMessage(m, stream);

        MessageBuffer mb;
        std::vector<Message> got;
        pushChunkedServe(mb, stream, rng, got);
        if (HasFatalFailure())
            return;

        ASSERT_EQ(got.size(), sent.size());
        for (size_t i = 0; i < sent.size(); ++i) {
            EXPECT_EQ(got[i].type, sent[i].type) << "message " << i;
            EXPECT_EQ(got[i].payload, sent[i].payload)
                << "message " << i;
        }
    }
}

TEST(ServeFraming, HeaderValidatedBeforeAllocation)
{
    // Unknown type byte.
    {
        MessageBuffer mb;
        uint8_t bad[] = {0x55, 1, 0, 0, 0, 9};
        mb.append(bad, sizeof(bad));
        Message m;
        std::string err;
        EXPECT_EQ(mb.next(m, &err), FrameStatus::Malformed);
        EXPECT_FALSE(err.empty());
        // Poison sticks even if valid bytes follow.
        std::vector<uint8_t> good;
        serializeMessage(encodeServerStats(), good);
        mb.append(good.data(), good.size());
        EXPECT_EQ(mb.next(m, &err), FrameStatus::Malformed);
    }
    // Length above the bound: Malformed immediately, no NeedMore wait.
    {
        MessageBuffer mb;
        uint32_t huge = uint32_t(kMaxServePayloadBytes + 1);
        uint8_t hdr[] = {uint8_t(MsgType::SubmitMission),
                         uint8_t(huge), uint8_t(huge >> 8),
                         uint8_t(huge >> 16), uint8_t(huge >> 24)};
        mb.append(hdr, sizeof(hdr));
        Message m;
        EXPECT_EQ(mb.next(m), FrameStatus::Malformed);
    }
    // Length exactly at the bound with a partial payload: NeedMore.
    {
        MessageBuffer mb;
        uint32_t len = uint32_t(kMaxServePayloadBytes);
        uint8_t hdr[] = {uint8_t(MsgType::ErrorReply), uint8_t(len),
                         uint8_t(len >> 8), uint8_t(len >> 16),
                         uint8_t(len >> 24)};
        mb.append(hdr, sizeof(hdr));
        Message m;
        EXPECT_EQ(mb.next(m), FrameStatus::NeedMore);
    }
}

// ============================================= served-result parity

TEST(ServeServer, GoldenParityOverTcp)
{
    ServerConfig cfg;
    cfg.workers = 3;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    for (const char *soc : {"A", "B", "C"}) {
        SCOPED_TRACE(std::string("config ") + soc);
        core::MissionSpec spec = canonicalSpec(soc);
        SubmitOutcome out = client.submit(spec);
        ASSERT_TRUE(out.accepted) << out.detail;
        ServedResult served = client.waitResult(out.jobId);

        core::MissionResult local = core::runMission(spec);
        std::string localCsv = core::trajectoryCsvString(local);
        EXPECT_EQ(fnv1a(served.trajectoryCsv), fnv1a(localCsv))
            << "served trajectory bytes drifted from the local run";
        EXPECT_EQ(served.trajectoryCsv, localCsv);
        EXPECT_EQ(served.collisions, local.collisions);
        EXPECT_EQ(served.trajectorySamples, local.trajectory.size());
        EXPECT_EQ(served.completed, local.completed);
        EXPECT_EQ(served.simulatedCycles, local.simulatedCycles);
    }
    server.stop();
}

TEST(ServeServer, FourConcurrentClientsStayBitIdentical)
{
    ServerConfig cfg;
    cfg.workers = 4;
    MissionServer server(cfg);
    server.start();
    uint16_t port = server.port();

    // Local reference hashes for the three canonical configs.
    static const char *kSocs[] = {"A", "B", "C"};
    uint64_t expect[3];
    for (int s = 0; s < 3; ++s)
        expect[s] = localTrajectoryHash(canonicalSpec(kSocs[s]));

    constexpr int kClients = 4;
    constexpr int kMissions = 8;
    std::vector<int> failures = core::parallelIndexed<int>(
        kClients, kClients, [&](size_t ci) -> int {
            int bad = 0;
            ServeClient client(port);
            std::vector<std::pair<uint64_t, int>> jobs;
            for (int m = int(ci); m < kMissions; m += kClients) {
                SubmitOutcome out =
                    client.submit(canonicalSpec(kSocs[m % 3]));
                if (!out.accepted) {
                    bad++;
                    continue;
                }
                jobs.emplace_back(out.jobId, m % 3);
            }
            for (auto [id, s] : jobs) {
                ServedResult r = client.waitResult(id);
                if (fnv1a(r.trajectoryCsv) != expect[s])
                    bad++;
            }
            return bad;
        });
    for (int b : failures)
        EXPECT_EQ(b, 0);

    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.accepted, kMissions);
    EXPECT_EQ(s.completed, kMissions);
    EXPECT_EQ(s.failed, 0u);
    server.stop();
}

// ================================================= admission control

TEST(ServeServer, QueueFullShedsLoadWithoutStallingInFlight)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxQueueDepth = 2;
    MissionServer server(cfg);
    server.pauseWorkers(); // make queue occupancy deterministic
    server.start();

    ServeClient client(server.port());
    std::vector<uint64_t> accepted;
    for (int i = 0; i < 2; ++i) {
        SubmitOutcome out = client.submit(quickSpec(uint64_t(i + 1)));
        ASSERT_TRUE(out.accepted) << out.detail;
        accepted.push_back(out.jobId);
    }
    // Queue is at capacity: further submissions are shed explicitly.
    for (int i = 0; i < 3; ++i) {
        SubmitOutcome out = client.submit(quickSpec(99));
        ASSERT_FALSE(out.accepted);
        EXPECT_EQ(out.reason, RejectReason::QueueFull);
        EXPECT_FALSE(out.detail.empty());
    }
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.rejectedQueueFull, 3u);
    EXPECT_EQ(s.queued, 2u);

    // Shedding never disturbs admitted work: resume and all accepted
    // jobs complete; the queue drains; a retry now succeeds.
    server.resumeWorkers();
    for (uint64_t id : accepted) {
        ServedResult r = client.waitResult(id);
        EXPECT_GT(r.trajectorySamples, 0u);
    }
    SubmitOutcome retry = client.submit(quickSpec(3));
    EXPECT_TRUE(retry.accepted);
    client.waitResult(retry.jobId);

    s = server.stats();
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.failed, 0u);
    server.stop();
}

TEST(ServeServer, PerClientCapLeavesOtherClientsAdmittable)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxQueueDepth = 16;
    cfg.perClientInFlight = 2;
    MissionServer server(cfg);
    server.pauseWorkers();
    server.start();

    ServeClient greedy(server.port());
    EXPECT_TRUE(greedy.submit(quickSpec(1)).accepted);
    EXPECT_TRUE(greedy.submit(quickSpec(2)).accepted);
    SubmitOutcome third = greedy.submit(quickSpec(3));
    ASSERT_FALSE(third.accepted);
    EXPECT_EQ(third.reason, RejectReason::ClientCap);

    // Another session is not penalized for the greedy one.
    ServeClient polite(server.port());
    EXPECT_TRUE(polite.submit(quickSpec(4)).accepted);

    EXPECT_EQ(server.stats().rejectedClientCap, 1u);
    server.resumeWorkers();
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 3;
    }));
    server.stop();
}

TEST(ServeServer, BadSpecsAreRejectedNotExecuted)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    core::MissionSpec bad = quickSpec();
    bad.modelDepth = 0;
    SubmitOutcome out = client.submit(bad);
    ASSERT_FALSE(out.accepted);
    EXPECT_EQ(out.reason, RejectReason::BadRequest);

    bad = quickSpec();
    bad.maxSimSeconds = -1.0;
    out = client.submit(bad);
    ASSERT_FALSE(out.accepted);
    EXPECT_EQ(out.reason, RejectReason::BadRequest);

    EXPECT_EQ(server.stats().accepted, 0u);
    server.stop();
}

TEST(ServeServer, UnserviceableResultSizeRejectedAtAdmission)
{
    // A spec whose trajectory provably cannot fit a ResultReply (tiny
    // sync granularity → one sample every 1k cycles → tens of MB of
    // CSV) is shed as bad_request at the front door; it must not
    // occupy a worker only to fail — and must never abort the daemon.
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    core::MissionSpec spec = quickSpec();
    spec.syncGranularity = 1000;
    SubmitOutcome out = client.submit(spec);
    ASSERT_FALSE(out.accepted);
    EXPECT_EQ(out.reason, RejectReason::BadRequest);
    EXPECT_FALSE(out.detail.empty());
    EXPECT_EQ(server.stats().accepted, 0u);

    // The daemon is fully serviceable afterwards.
    EXPECT_TRUE(client.submit(quickSpec()).accepted);
    server.stop();
}

TEST(ServeServer, FailedJobReportsFailedStateOverTheWire)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    // Unknown SoC names pass admission (cheap validation only) and
    // throw in the worker — a Failed job, not a dead daemon.
    core::MissionSpec spec = quickSpec();
    spec.socName = "Z";
    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted) << out.detail;

    ServedResult r;
    JobState state = JobState::Unknown;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (!client.tryFetchResult(out.jobId, r, &state)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(state, JobState::Failed);
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.failureReason.empty());
    EXPECT_EQ(server.stats().failed, 1u);
    server.stop();
}

TEST(ServeServer, FetchReleasesResultAndRetentionIsBounded)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetainedResults = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    // Fetch is one-shot: the record is released with the reply.
    SubmitOutcome a = client.submit(quickSpec(1));
    ASSERT_TRUE(a.accepted);
    ServedResult r = client.waitResult(a.jobId);
    EXPECT_GT(r.trajectorySamples, 0u);
    EXPECT_EQ(client.status(a.jobId).state, JobState::Unknown);
    EXPECT_THROW(client.waitResult(a.jobId, 500), ProtocolError);

    // Unfetched terminal jobs are bounded by the retention FIFO: with
    // capacity 1, finishing a third job evicts the second unfetched.
    SubmitOutcome b = client.submit(quickSpec(2));
    SubmitOutcome c = client.submit(quickSpec(3));
    ASSERT_TRUE(b.accepted);
    ASSERT_TRUE(c.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 3;
    }));
    EXPECT_EQ(client.status(b.jobId).state, JobState::Unknown);
    EXPECT_EQ(client.status(c.jobId).state, JobState::Done);
    ServedResult rc = client.waitResult(c.jobId);
    EXPECT_GT(rc.trajectorySamples, 0u);
    server.stop();
}

TEST(ServeServer, StalledReaderDoesNotBlockOtherClients)
{
    // One client that requests its (large) result and then never
    // reads must cost only its own connection: other sessions stay
    // serviceable the whole time, and the stalled connection is
    // dropped once its reply makes no progress for sendTimeoutMs.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.sendTimeoutMs = 2000;
    cfg.sendBufferBytes = 4096; // shrink kernel buffering so the
                                // ~90 KiB reply actually stalls
    MissionServer server(cfg);
    server.start();

    ServeClient observer(server.port());

    // Raw non-reading socket with a tiny receive window.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // Submit the canonical mission (~90 KiB of trajectory CSV). The
    // daemon assigns it job id 1 — it is the first submission.
    std::vector<uint8_t> wire;
    serializeMessage(encodeSubmitMission(canonicalSpec("A")), wire);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              ssize_t(wire.size()));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));

    // Ask for the result, then never read a byte of it.
    wire.clear();
    serializeMessage(encodeFetchResult(1), wire);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              ssize_t(wire.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // While that reply is wedged, other clients are serviced at full
    // speed (well under the 2 s stall deadline) — no head-of-line
    // blocking through the shared IO loop.
    auto t0 = std::chrono::steady_clock::now();
    ServerStatsSnapshot s = observer.serverStats();
    double statsMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    EXPECT_LT(statsMs, 1500.0);
    EXPECT_EQ(s.connectionsOpen, 2u);
    SubmitOutcome out = observer.submit(quickSpec(9));
    ASSERT_TRUE(out.accepted);
    EXPECT_GT(observer.waitResult(out.jobId).trajectorySamples, 0u);

    // The stalled connection is dropped after the progress deadline;
    // everything else keeps running.
    ASSERT_TRUE(eventually(
        server,
        [](const ServerStatsSnapshot &st) {
            return st.connectionsOpen == 1;
        },
        15000));
    ::close(fd);
    EXPECT_TRUE(observer.submit(quickSpec(10)).accepted);
    server.stop();
}

// ================================================== session lifecycle

TEST(ServeServer, CancelDequeuesQueuedJob)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.pauseWorkers();
    server.start();

    ServeClient client(server.port());
    SubmitOutcome out = client.submit(quickSpec());
    ASSERT_TRUE(out.accepted);

    CancelInfo c = client.cancel(out.jobId);
    EXPECT_EQ(c.outcome, CancelOutcome::Dequeued);
    EXPECT_EQ(client.status(out.jobId).state, JobState::Cancelled);
    EXPECT_THROW(client.waitResult(out.jobId, 1000), ProtocolError);
    EXPECT_EQ(client.cancel(999999).outcome,
              CancelOutcome::UnknownJob);
    EXPECT_EQ(client.status(999999).state, JobState::Unknown);

    EXPECT_EQ(server.stats().cancelled, 1u);
    server.resumeWorkers();
    server.stop();
}

TEST(ServeServer, ClientDisconnectMidMissionDoesNotKillServer)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    core::MissionSpec spec = canonicalSpec("A"); // ~0.3 s of wall time
    uint64_t runningJob = 0;
    uint64_t queuedJob = 0;
    {
        ServeClient doomed(server.port());
        SubmitOutcome a = doomed.submit(spec);
        ASSERT_TRUE(a.accepted);
        runningJob = a.jobId;
        // Wait until it is actually running, then queue another.
        ASSERT_TRUE(eventually(server,
                               [](const ServerStatsSnapshot &s) {
                                   return s.running == 1;
                               }));
        SubmitOutcome b = doomed.submit(quickSpec(7));
        ASSERT_TRUE(b.accepted);
        queuedJob = b.jobId;
        // Destructor closes the socket mid-mission.
    }

    // The server must retire the session: its queued job is shed, the
    // running mission finishes (orphaned), nothing crashes.
    ASSERT_TRUE(eventually(server, [&](const ServerStatsSnapshot &s) {
        return s.connectionsOpen == 0 && s.cancelled == 1 &&
               s.completed == 1 && s.running == 0;
    }));

    // A new session still gets served, and the orphaned result stays
    // fetchable by job id with bit-identical bytes.
    ServeClient fresh(server.port());
    ServedResult r = fresh.waitResult(runningJob, 30000);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec));
    EXPECT_EQ(fresh.status(queuedJob).state, JobState::Cancelled);
    EXPECT_TRUE(fresh.submit(quickSpec(8)).accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 2;
    }));
    server.stop();
}

TEST(ServeServer, MalformedStreamDropsConnectionOnly)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient observer(server.port());
    EXPECT_EQ(observer.serverStats().malformed, 0u);

    // Raw garbage through a plain socket: the server must drop that
    // connection and count it, not crash or stall other sessions.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
              ssize_t(sizeof(garbage)));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.malformed >= 1;
    }));
    ::close(fd);

    // The server is still fully serviceable.
    EXPECT_TRUE(observer.submit(quickSpec()).accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));
    server.stop();
}

TEST(ServeServer, CleanShutdownDrainsInFlightJobs)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    SubmitOutcome a = client.submit(quickSpec(1));
    SubmitOutcome b = client.submit(quickSpec(2));
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);

    client.shutdownServer(/*drain=*/true);
    // New submissions are refused while draining (if the window is
    // still open; the server may already have drained and closed).
    try {
        SubmitOutcome late = client.submit(quickSpec(3));
        EXPECT_FALSE(late.accepted);
        if (!late.accepted) {
            EXPECT_EQ(late.reason, RejectReason::ShuttingDown);
        }
    } catch (const bridge::TransportError &) {
        // Drain finished first and the connection was closed — also a
        // clean shutdown.
    }

    server.waitForShutdown();
    EXPECT_FALSE(server.running());
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.completed, 2u); // both in-flight jobs ran to the end
    EXPECT_EQ(s.failed, 0u);
}

TEST(ServeServer, ImmediateShutdownShedsQueueButFinishesRunning)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    SubmitOutcome a = client.submit(quickSpec(1));
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.running == 1;
    }));
    SubmitOutcome b = client.submit(quickSpec(2));
    ASSERT_TRUE(b.accepted);

    server.stop(/*drain=*/false);
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.completed, 1u); // the running mission finished
    EXPECT_EQ(s.cancelled, 1u); // the queued one was shed
}

TEST(ServeServer, EphemeralPortsNeverCollide)
{
    // Two daemons asking for port 0 concurrently get distinct ports
    // (the PR-1-era fixed-port race), and both serve traffic.
    MissionServer s1{ServerConfig{}};
    MissionServer s2{ServerConfig{}};
    EXPECT_NE(s1.port(), 0);
    EXPECT_NE(s2.port(), 0);
    EXPECT_NE(s1.port(), s2.port());
    s1.start();
    s2.start();
    ServeClient c1(s1.port());
    ServeClient c2(s2.port());
    EXPECT_EQ(c1.serverStats().connectionsOpen, 1u);
    EXPECT_EQ(c2.serverStats().connectionsOpen, 1u);
    s1.stop();
    s2.stop();
}

TEST(ServeServer, ListenerFailureThrowsInsteadOfAborting)
{
    // Binding a port that is already taken must surface as a
    // TransportError a daemon can catch — not a process abort
    // (PR 1 panic→throw policy, extended to the listener path).
    bridge::TcpListener first(0);
    EXPECT_THROW(bridge::TcpListener second(first.port()),
                 bridge::TransportError);
}
