/**
 * @file
 * Tests of the mission-service daemon (src/serve/).
 *
 * Five layers:
 *  - protocol codecs: every request/response round-trips byte-exactly,
 *    including the v2 result-stream frames (ResultChunk / ResultEnd /
 *    Progress) and the fixed-width binary trajectory encoding with
 *    its canonical-f32 CSV print-parity invariant;
 *  - framing: seeded fuzz of MessageBuffer (mirrors the bridge's
 *    test_framing_fuzz harness) — arbitrary bytes never crash, hang,
 *    or allocate past the payload bound, and poison sticks;
 *  - stream reassembly: ResultStreamAssembler state machine under
 *    seeded fuzz — random chunk splits, truncation, frames after
 *    ResultEnd, corrupted hashes — every violation is a clean
 *    ProtocolError, never a crash or a silent wrong result;
 *  - served-result determinism: a mission submitted over TCP returns
 *    a trajectory CSV whose FNV-1a hash is bit-identical to the same
 *    spec run locally via runMission(), including under 4 concurrent
 *    clients and for multi-megabyte trajectories streamed across many
 *    chunks in both encodings (the golden-trace acceptance
 *    criterion);
 *  - admission control & lifecycle: queue-full and per-client-cap
 *    shedding, cancellation, stalled readers and disconnects
 *    mid-stream, byte-bounded result retention, and clean shutdown
 *    with in-flight jobs;
 *  - durability & crash recovery (ServeDurability): the write-ahead
 *    job journal replayed across a daemon restart (terminal results
 *    fetchable bit-identically, interrupted jobs re-queued and
 *    warm-restored from their persisted checkpoint, idempotency keys
 *    deduplicated), hash-verified AckResult release, resume-offset
 *    result streams, and reconnect-enabled clients surviving severed
 *    connections (ci/chaos_smoke.sh adds the real SIGKILL
 *    dimension).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bridge/transport.hh"

#include "core/batch.hh"
#include "core/experiment.hh"
#include "core/supervisor.hh"
#include "serve/client.hh"
#include "serve/journal.hh"
#include "serve/server.hh"
#include "util/hash.hh"
#include "util/rng.hh"

using namespace rose;
using namespace rose::serve;

namespace {

/** The golden canonical mission (mirrors test_golden.cc). */
core::MissionSpec
canonicalSpec(const std::string &soc, double sim_seconds = 10.0)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = soc;
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = 1;
    spec.maxSimSeconds = sim_seconds;
    return spec;
}

/** A cheap mission for lifecycle tests (~0.1 s of wall time). */
core::MissionSpec
quickSpec(uint64_t seed = 1)
{
    core::MissionSpec spec = canonicalSpec("A", 2.0);
    spec.seed = seed;
    return spec;
}

uint64_t
localTrajectoryHash(const core::MissionSpec &spec)
{
    core::MissionResult r = core::runMission(spec);
    return fnv1a(core::trajectoryCsvString(r));
}

/** Poll a predicate over server stats until it holds or we time out. */
template <typename Pred>
bool
eventually(MissionServer &server, Pred pred, int timeout_ms = 10000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (pred(server.stats()))
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

} // namespace

// ===================================================== protocol codecs

TEST(ServeProto, SpecCodecRoundTripsEveryField)
{
    core::MissionSpec spec;
    spec.world = "s-shape";
    spec.vehicle = "rover";
    spec.socName = "C";
    spec.modelDepth = 26;
    spec.velocity = 7.25;
    spec.initialYawDeg = -15.5;
    spec.syncGranularity = 12345678;
    spec.mode = runtime::RuntimeMode::Dynamic;
    spec.seed = 0xdeadbeefcafeULL;
    spec.maxSimSeconds = 42.5;
    spec.degradedMode = true;
    spec.faults.enabled = true;
    spec.faults.dropProb = 0.125;
    spec.faults.corruptProb = 0.0625;
    spec.faults.reorderProb = 0.5;
    spec.faults.delayProb = 0.25;
    spec.faults.delayOpsMin = 3;
    spec.faults.delayOpsMax = 17;
    spec.faults.protectSyncPackets = false;
    spec.faults.seed = 0x1234;

    core::MissionSpec back =
        decodeSubmitMission(encodeSubmitMission(spec));
    EXPECT_EQ(back.world, spec.world);
    EXPECT_EQ(back.vehicle, spec.vehicle);
    EXPECT_EQ(back.socName, spec.socName);
    EXPECT_EQ(back.modelDepth, spec.modelDepth);
    EXPECT_EQ(back.velocity, spec.velocity);
    EXPECT_EQ(back.initialYawDeg, spec.initialYawDeg);
    EXPECT_EQ(back.syncGranularity, spec.syncGranularity);
    EXPECT_EQ(back.mode, spec.mode);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.maxSimSeconds, spec.maxSimSeconds);
    EXPECT_EQ(back.degradedMode, spec.degradedMode);
    EXPECT_EQ(back.faults.enabled, spec.faults.enabled);
    EXPECT_EQ(back.faults.dropProb, spec.faults.dropProb);
    EXPECT_EQ(back.faults.corruptProb, spec.faults.corruptProb);
    EXPECT_EQ(back.faults.reorderProb, spec.faults.reorderProb);
    EXPECT_EQ(back.faults.delayProb, spec.faults.delayProb);
    EXPECT_EQ(back.faults.delayOpsMin, spec.faults.delayOpsMin);
    EXPECT_EQ(back.faults.delayOpsMax, spec.faults.delayOpsMax);
    EXPECT_EQ(back.faults.protectSyncPackets,
              spec.faults.protectSyncPackets);
    EXPECT_EQ(back.faults.seed, spec.faults.seed);
}

TEST(ServeProto, ReplyCodecsRoundTrip)
{
    SubmitOkReply ok{42, 7};
    SubmitOkReply ok2 = decodeSubmitOk(encodeSubmitOk(ok));
    EXPECT_EQ(ok2.jobId, 42u);
    EXPECT_EQ(ok2.queuePosition, 7u);

    RejectedReply rej{RejectReason::QueueFull, "queue depth reached"};
    RejectedReply rej2 = decodeRejected(encodeRejected(rej));
    EXPECT_EQ(rej2.reason, RejectReason::QueueFull);
    EXPECT_EQ(rej2.detail, rej.detail);

    StatusInfo st;
    st.jobId = 9;
    st.state = JobState::Running;
    st.queuePosition = 3;
    st.queueWaitMs = 12.5;
    st.serviceMs = 99.25;
    StatusInfo st2 = decodeStatusReply(encodeStatusReply(st));
    EXPECT_EQ(st2.jobId, 9u);
    EXPECT_EQ(st2.state, JobState::Running);
    EXPECT_EQ(st2.queuePosition, 3u);
    EXPECT_EQ(st2.queueWaitMs, 12.5);
    EXPECT_EQ(st2.serviceMs, 99.25);

    CancelInfo c{11, CancelOutcome::TooLate};
    CancelInfo c2 = decodeCancelReply(encodeCancelReply(c));
    EXPECT_EQ(c2.jobId, 11u);
    EXPECT_EQ(c2.outcome, CancelOutcome::TooLate);

    ServerStatsData s;
    s.submitted = 100;
    s.accepted = 90;
    s.completed = 80;
    s.failed = 5;
    s.cancelled = 5;
    s.rejectedQueueFull = 7;
    s.rejectedClientCap = 2;
    s.rejectedShutdown = 1;
    s.malformed = 3;
    s.queued = 4;
    s.running = 2;
    s.workers = 8;
    s.queueCapacity = 16;
    s.connectionsAccepted = 12;
    s.connectionsOpen = 6;
    s.totalQueueWaitMs = 1234.5;
    s.maxQueueWaitMs = 250.25;
    s.totalServiceMs = 9876.5;
    s.maxServiceMs = 500.125;
    s.streamsStarted = 17;
    s.streamsCompleted = 15;
    s.streamedChunks = 1234;
    s.streamedPayloadBytes = 987654321;
    s.progressEvents = 4321;
    s.retainedResultBytes = 55555;
    s.activeStreams = 2;
    s.dedupedSubmits = 9;
    s.journalReplayedJobs = 3;
    s.warmRestoredJobs = 2;
    s.resultsAcked = 77;
    s.streamsResumed = 6;
    ServerStatsData s2 = decodeStatsReply(encodeStatsReply(s));
    EXPECT_EQ(s2.submitted, s.submitted);
    EXPECT_EQ(s2.rejectedQueueFull, s.rejectedQueueFull);
    EXPECT_EQ(s2.rejectedClientCap, s.rejectedClientCap);
    EXPECT_EQ(s2.malformed, s.malformed);
    EXPECT_EQ(s2.queued, s.queued);
    EXPECT_EQ(s2.connectionsAccepted, s.connectionsAccepted);
    EXPECT_EQ(s2.totalQueueWaitMs, s.totalQueueWaitMs);
    EXPECT_EQ(s2.maxServiceMs, s.maxServiceMs);
    EXPECT_EQ(s2.streamsStarted, s.streamsStarted);
    EXPECT_EQ(s2.streamsCompleted, s.streamsCompleted);
    EXPECT_EQ(s2.streamedChunks, s.streamedChunks);
    EXPECT_EQ(s2.streamedPayloadBytes, s.streamedPayloadBytes);
    EXPECT_EQ(s2.progressEvents, s.progressEvents);
    EXPECT_EQ(s2.retainedResultBytes, s.retainedResultBytes);
    EXPECT_EQ(s2.activeStreams, s.activeStreams);
    EXPECT_EQ(s2.dedupedSubmits, s.dedupedSubmits);
    EXPECT_EQ(s2.journalReplayedJobs, s.journalReplayedJobs);
    EXPECT_EQ(s2.warmRestoredJobs, s.warmRestoredJobs);
    EXPECT_EQ(s2.resultsAcked, s.resultsAcked);
    EXPECT_EQ(s2.streamsResumed, s.streamsResumed);

    EXPECT_EQ(decodeQueryStatus(encodeQueryStatus(77)), 77u);
    FetchRequest fr = decodeFetchResult(encodeFetchResult(78));
    EXPECT_EQ(fr.jobId, 78u);
    EXPECT_EQ(fr.encoding, TrajectoryEncoding::Csv);
    EXPECT_EQ(fr.resumeOffset, 0u);
    fr = decodeFetchResult(encodeFetchResult(
        80, TrajectoryEncoding::Binary, 0x1234567890abcdefULL));
    EXPECT_EQ(fr.jobId, 80u);
    EXPECT_EQ(fr.encoding, TrajectoryEncoding::Binary);
    EXPECT_EQ(fr.resumeOffset, 0x1234567890abcdefULL);

    // v3 additions: the idempotency key rides the submit payload, and
    // AckResult/AckReply close the fetch-verify-release handshake.
    core::MissionSpec keyedSpec;
    keyedSpec.seed = 99;
    SubmitRequest sr = decodeSubmitRequest(
        encodeSubmitMission(keyedSpec, "retry-key-1"));
    EXPECT_EQ(sr.spec.seed, 99u);
    EXPECT_EQ(sr.idempotencyKey, "retry-key-1");
    AckRequest ar =
        decodeAckResult(encodeAckResult(55, 0xfeedfacecafef00dULL));
    EXPECT_EQ(ar.jobId, 55u);
    EXPECT_EQ(ar.trajectoryHash, 0xfeedfacecafef00dULL);
    AckInfo ai{55, AckOutcome::HashMismatch};
    AckInfo ai2 = decodeAckReply(encodeAckReply(ai));
    EXPECT_EQ(ai2.jobId, 55u);
    EXPECT_EQ(ai2.outcome, AckOutcome::HashMismatch);
    // An unknown encoding byte is rejected, not trusted.
    Message badEnc = encodeFetchResult(81);
    badEnc.payload[8] = 0x7f;
    EXPECT_THROW(decodeFetchResult(badEnc), ProtocolError);
    EXPECT_EQ(decodeCancelMission(encodeCancelMission(79)), 79u);
    EXPECT_TRUE(decodeShutdown(encodeShutdown(true)));
    EXPECT_FALSE(decodeShutdown(encodeShutdown(false)));
    EXPECT_EQ(decodeErrorReply(encodeErrorReply("boom")), "boom");
}

namespace {

/** A scalar-only ServedResult with every field populated. */
ServedResult
denseScalarResult()
{
    ServedResult r;
    r.completed = true;
    r.status = 0;
    r.missionTime = 9.99;
    r.collisions = 3;
    r.avgSpeed = 2.5;
    r.maxSpeed = 3.75;
    r.distanceTravelled = 25.0;
    r.inferences = 500;
    r.avgInferenceLatency = 0.015;
    r.energyJoules = 1.25;
    r.avgPowerWatts = 0.125;
    r.simulatedCycles = 10'000'000'000ULL;
    r.trajectorySamples = 2;
    r.degradedIntervals = 1;
    r.queueWaitMs = 5.5;
    r.serviceMs = 300.25;
    return r;
}

/** Plausible-physics random samples (magnitudes the canonical-f32
 *  quantization is specified for: no f32 overflow or subnormals). */
std::vector<core::TrajectorySample>
randomSamples(Rng &rng, size_t n)
{
    std::vector<core::TrajectorySample> v(n);
    for (size_t i = 0; i < n; ++i) {
        core::TrajectorySample &s = v[i];
        s.time = double(i) * 0.01 + rng.uniform(0.0, 0.001);
        s.position = {rng.uniform(-500.0, 500.0),
                      rng.uniform(-500.0, 500.0),
                      rng.uniform(-50.0, 50.0)};
        s.yaw = rng.uniform(-3.2, 3.2);
        s.speed = rng.uniform(0.0, 30.0);
        s.lateralOffset = rng.uniform(-5.0, 5.0);
        s.collisions = rng.uniformInt(100);
        s.cmdForward = rng.uniform(-1.0, 1.0);
        s.cmdLateral = rng.uniform(-1.0, 1.0);
        s.cmdYawRate = rng.uniform(-2.0, 2.0);
        if (i % 7 == 0) {
            s.speed = 0.0; // exact zeros must survive quantization
            s.cmdLateral = 0.0;
        }
    }
    return v;
}

/** Slice a trajectory payload into ResultChunk frames + ResultEnd,
 *  exactly as the server's stream pump does. */
std::vector<Message>
buildStream(uint64_t job_id, const std::string &csv,
            size_t chunk_bytes, const ServedResult &scalars,
            JobState state = JobState::Done)
{
    std::vector<Message> frames;
    uint32_t seq = 0;
    for (size_t off = 0; off < csv.size(); off += chunk_bytes) {
        ResultChunkData c;
        c.jobId = job_id;
        c.seq = seq++;
        size_t n = std::min(chunk_bytes, csv.size() - off);
        c.bytes.assign(csv.begin() + std::ptrdiff_t(off),
                       csv.begin() + std::ptrdiff_t(off + n));
        frames.push_back(encodeResultChunk(c));
    }
    ResultEndData end;
    end.jobId = job_id;
    end.state = state;
    end.encoding = TrajectoryEncoding::Csv;
    end.chunkCount = seq;
    end.payloadBytes = csv.size();
    end.trajectoryHash = fnv1a(csv);
    end.payloadHash = fnv1a(csv); // Csv payload IS the canonical CSV
    end.result = scalars;
    frames.push_back(encodeResultEnd(end));
    return frames;
}

} // namespace

TEST(ServeProto, ResultChunkAndEndRoundTrip)
{
    ResultChunkData c;
    c.jobId = 21;
    c.seq = 7;
    c.bytes = {1, 2, 3, 250, 0, 99};
    ResultChunkData c2 = decodeResultChunk(encodeResultChunk(c));
    EXPECT_EQ(c2.jobId, 21u);
    EXPECT_EQ(c2.seq, 7u);
    EXPECT_EQ(c2.bytes, c.bytes);

    ResultEndData e;
    e.jobId = 21;
    e.state = JobState::Failed;
    e.encoding = TrajectoryEncoding::Binary;
    e.chunkCount = 13;
    e.payloadBytes = 123456789;
    e.trajectoryHash = 0xabcdef0123456789ULL;
    e.payloadHash = 0x1122334455667788ULL;
    e.result = denseScalarResult();
    e.result.failureReason = "mission threw";
    ResultEndData e2 = decodeResultEnd(encodeResultEnd(e));
    EXPECT_EQ(e2.jobId, 21u);
    EXPECT_EQ(e2.state, JobState::Failed);
    EXPECT_EQ(e2.encoding, TrajectoryEncoding::Binary);
    EXPECT_EQ(e2.chunkCount, 13u);
    EXPECT_EQ(e2.payloadBytes, 123456789u);
    EXPECT_EQ(e2.trajectoryHash, e.trajectoryHash);
    EXPECT_EQ(e2.payloadHash, e.payloadHash);
    EXPECT_EQ(e2.result.failureReason, "mission threw");
    EXPECT_EQ(e2.result.collisions, e.result.collisions);
    EXPECT_EQ(e2.result.simulatedCycles, e.result.simulatedCycles);
    EXPECT_EQ(e2.result.queueWaitMs, e.result.queueWaitMs);
    EXPECT_EQ(e2.result.serviceMs, e.result.serviceMs);
    // The decoder surfaces the verification hash on the result too.
    EXPECT_EQ(e2.result.trajectoryHash, e.trajectoryHash);

    // Non-terminal state bytes are rejected, not trusted.
    Message m = encodeResultEnd(e);
    m.payload[8] = uint8_t(JobState::Running);
    EXPECT_THROW(decodeResultEnd(m), ProtocolError);

    ProgressEvent p;
    p.jobId = 44;
    p.simTimeSeconds = 1.25;
    p.maxSimSeconds = 10.0;
    p.samples = 125;
    ProgressEvent p2 = decodeProgress(encodeProgress(p));
    EXPECT_EQ(p2.jobId, 44u);
    EXPECT_EQ(p2.simTimeSeconds, 1.25);
    EXPECT_EQ(p2.maxSimSeconds, 10.0);
    EXPECT_EQ(p2.samples, 125u);
}

TEST(ServeProto, CanonicalF32PreservesCsvCells)
{
    // The binary encoding's whole correctness argument: quantizing a
    // double to canonicalTrajectoryF32 must not change how the value
    // prints at the CSV's 6-significant-digit precision. (An f32 is
    // within 2^-24 relative of the printed decimal, far inside the
    // 5e-7 half-step of the 6-digit grid, so the nearest 6-digit
    // decimal to the f32 is the original cell.)
    Rng rng(0xf32f32);
    for (int i = 0; i < 20000; ++i) {
        double mag = std::pow(10.0, rng.uniform(-6.0, 9.0));
        double v = rng.uniform(-1.0, 1.0) * mag;
        if (i % 13 == 0)
            v = 0.0;
        std::ostringstream a;
        a << v;
        std::ostringstream b;
        b << double(canonicalTrajectoryF32(v));
        ASSERT_EQ(a.str(), b.str()) << "value " << v;
    }
}

TEST(ServeProto, BinaryTrajectoryCodecPreservesCsvBytes)
{
    Rng rng(0xb17a57);
    for (int round = 0; round < 20; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        std::vector<core::TrajectorySample> samples =
            randomSamples(rng, rng.uniformInt(300));
        std::vector<uint8_t> wire = encodeTrajectoryBinary(samples);
        ASSERT_EQ(wire.size(),
                  samples.size() * kTrajectoryBinaryRecordBytes);
        std::vector<core::TrajectorySample> back =
            decodeTrajectoryBinary(wire.data(), wire.size());
        ASSERT_EQ(back.size(), samples.size());
        // The decoded samples re-render to the exact CSV bytes of the
        // originals — the invariant the streamed hash check rests on.
        EXPECT_EQ(core::trajectoryCsvString(back),
                  core::trajectoryCsvString(samples));
        for (size_t i = 0; i < back.size(); ++i)
            ASSERT_EQ(back[i].collisions, samples[i].collisions);
    }

    // Truncated / misaligned binary payloads are rejected cleanly.
    std::vector<uint8_t> wire =
        encodeTrajectoryBinary(randomSamples(rng, 3));
    EXPECT_THROW(decodeTrajectoryBinary(wire.data(), wire.size() - 1),
                 ProtocolError);
    // A collision count that cannot ride the u32 record field throws
    // at encode time instead of truncating silently.
    std::vector<core::TrajectorySample> overflow = randomSamples(rng, 1);
    overflow[0].collisions = uint64_t(UINT32_MAX) + 1;
    EXPECT_THROW(encodeTrajectoryBinary(overflow), ProtocolError);
}

TEST(ServeProto, AssemblerReassemblesMultiChunkStream)
{
    // CSV payload sliced at an awkward chunk size (not a divisor).
    std::vector<core::TrajectorySample> samples;
    {
        Rng rng(0x5eed);
        samples = randomSamples(rng, 200);
    }
    std::string csv = core::trajectoryCsvString(samples);
    ServedResult scalars = denseScalarResult();
    scalars.failureReason.clear();
    std::vector<Message> frames = buildStream(9, csv, 777, scalars);
    ASSERT_GT(frames.size(), 3u);

    ResultStreamAssembler assembler(9);
    for (size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(assembler.feed(frames[i]), i + 1 == frames.size());
        EXPECT_EQ(assembler.complete(), i + 1 == frames.size());
    }
    ResultData d = assembler.takeResult();
    EXPECT_EQ(d.jobId, 9u);
    EXPECT_EQ(d.state, JobState::Done);
    EXPECT_EQ(d.result.trajectoryCsv, csv);
    EXPECT_EQ(d.result.collisions, scalars.collisions);

    // Binary streams verify over the record bytes themselves and
    // deliver decoded samples; no CSV is rendered inside the fetch,
    // but rendering the samples reproduces the canonical CSV.
    std::vector<uint8_t> bin = encodeTrajectoryBinary(samples);
    std::string binStr(bin.begin(), bin.end());
    std::vector<Message> binFrames =
        buildStream(10, binStr, 555, scalars);
    // Rewrite the end frame for binary semantics.
    ResultEndData end;
    end.jobId = 10;
    end.state = JobState::Done;
    end.encoding = TrajectoryEncoding::Binary;
    end.chunkCount = uint32_t(binFrames.size() - 1);
    end.payloadBytes = bin.size();
    end.trajectoryHash = fnv1a(core::trajectoryCsvString(samples));
    end.payloadHash = fnv1a(bin.data(), bin.size());
    end.result = scalars;
    binFrames.back() = encodeResultEnd(end);

    ResultStreamAssembler binAssembler(10);
    for (const Message &f : binFrames)
        binAssembler.feed(f);
    ASSERT_TRUE(binAssembler.complete());
    ResultData bd = binAssembler.takeResult();
    EXPECT_TRUE(bd.result.trajectoryCsv.empty())
        << "Binary reassembly must not pay for a CSV render";
    EXPECT_EQ(bd.payloadHash, end.payloadHash);
    EXPECT_EQ(core::trajectoryCsvString(bd.result.trajectory),
              core::trajectoryCsvString(samples));

    // A corrupted binary payload is caught by the payload hash even
    // though no CSV is rendered.
    {
        std::vector<uint8_t> evil = bin;
        evil[evil.size() / 2] ^= 0x40;
        std::string evilStr(evil.begin(), evil.end());
        std::vector<Message> evilFrames =
            buildStream(10, evilStr, 555, scalars);
        evilFrames.back() = encodeResultEnd(end);
        ResultStreamAssembler a(10);
        size_t i = 0;
        EXPECT_THROW(
            {
                for (; i < evilFrames.size(); ++i)
                    a.feed(evilFrames[i]);
            },
            ProtocolError);
    }
}

TEST(ServeProto, AssemblerResumesAfterRewind)
{
    // The client half of reconnect-resume: after the connection dies
    // mid-stream, rewindForResume() keeps the payload prefix and
    // expects the resumed stream's chunk numbering to restart at 0 —
    // exactly how the server numbers a stream resumed at
    // payloadBytes(). The reassembled bytes must equal the
    // uninterrupted stream's, verified by the same full-payload hash.
    std::vector<core::TrajectorySample> samples;
    {
        Rng rng(0x7e5e7);
        samples = randomSamples(rng, 150);
    }
    std::string csv = core::trajectoryCsvString(samples);
    ServedResult scalars = denseScalarResult();
    scalars.failureReason.clear();
    std::vector<Message> first = buildStream(12, csv, 512, scalars);
    ASSERT_GT(first.size(), 5u);

    ResultStreamAssembler a(12);
    // Feed a few chunks, then "lose the connection".
    for (size_t i = 0; i < 3; ++i)
        a.feed(first[i]);
    size_t resumeAt = a.payloadBytes();
    ASSERT_EQ(resumeAt, 3u * 512);
    a.rewindForResume();
    EXPECT_EQ(a.payloadBytes(), resumeAt); // prefix kept

    // The resumed stream: the byte suffix sliced fresh, seq from 0,
    // chunkCount covering only this stream's chunks, but payloadBytes
    // and the hash always describing the TOTAL payload.
    std::string rest = csv.substr(resumeAt);
    std::vector<Message> resumed = buildStream(12, rest, 700, scalars);
    ResultEndData end = decodeResultEnd(resumed.back());
    end.payloadBytes = csv.size();
    end.trajectoryHash = fnv1a(csv);
    end.payloadHash = fnv1a(csv);
    resumed.back() = encodeResultEnd(end);
    for (const Message &f : resumed)
        a.feed(f);
    ASSERT_TRUE(a.complete());
    EXPECT_EQ(a.takeResult().result.trajectoryCsv, csv);
}

TEST(ServeProto, AssemblerRejectsProtocolViolations)
{
    std::string csv = "t,x\n0.01,1\n0.02,2\n0.03,3\n";
    ServedResult scalars;
    auto frames = [&] { return buildStream(5, csv, 8, scalars); };

    { // chunk for the wrong job
        ResultStreamAssembler a(5);
        Message alien = encodeResultChunk({6, 0, {1, 2, 3}});
        EXPECT_THROW(a.feed(alien), ProtocolError);
    }
    { // out-of-order sequence number
        ResultStreamAssembler a(5);
        std::vector<Message> fs = frames();
        ASSERT_TRUE(a.feed(fs[0]) == false);
        EXPECT_THROW(a.feed(fs[0]), ProtocolError); // seq 0 repeated
    }
    { // frames after ResultEnd
        ResultStreamAssembler a(5);
        for (const Message &f : frames())
            a.feed(f);
        ASSERT_TRUE(a.complete());
        EXPECT_THROW(a.feed(encodeResultChunk({5, 99, {1}})),
                     ProtocolError);
    }
    { // truncated: end frame claims more chunks than were fed
        ResultStreamAssembler a(5);
        std::vector<Message> fs = frames();
        a.feed(fs[0]);
        EXPECT_THROW(a.feed(fs.back()), ProtocolError);
        EXPECT_FALSE(a.complete());
    }
    { // corrupted verification hash — flipping either the payload
      // hash or the canonical-CSV hash must be caught (a Csv stream
      // requires them to agree)
        for (int which = 0; which < 2; ++which) {
            ResultStreamAssembler a(5);
            std::vector<Message> fs = frames();
            ResultEndData end = decodeResultEnd(fs.back());
            if (which == 0)
                end.payloadHash ^= 1;
            else
                end.trajectoryHash ^= 1;
            fs.back() = encodeResultEnd(end);
            for (size_t i = 0; i + 1 < fs.size(); ++i)
                a.feed(fs[i]);
            EXPECT_THROW(a.feed(fs.back()), ProtocolError);
        }
    }
    { // a Progress frame must never reach the assembler
        ResultStreamAssembler a(5);
        EXPECT_THROW(a.feed(encodeProgress({5, 0.5, 1.0, 10})),
                     ProtocolError);
    }
    { // per-stream memory bound: oversized payload rejected
        ResultStreamAssembler a(5, 16);
        std::vector<Message> fs = frames();
        a.feed(fs[0]);
        a.feed(fs[1]);
        EXPECT_THROW(a.feed(fs[2]), ProtocolError);
    }
}

TEST(ServeProto, StreamFuzzReassemblyNeverCrashes)
{
    // Seeded adversarial streams: random chunk sizes, random framing
    // splits, and per-seed mutations (truncation, frames after end,
    // interleaved Progress, hash corruption). Every outcome must be
    // either a verified result or a clean ProtocolError — no crash,
    // no hang, no silently wrong bytes (ASan/UBSan presets make the
    // "no corruption" half observable).
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 2654435761u);

        std::vector<core::TrajectorySample> samples =
            randomSamples(rng, rng.uniformInt(120));
        std::string csv = core::trajectoryCsvString(samples);
        uint64_t jobId = 1 + rng.uniformInt(1000);
        size_t chunkBytes = 1 + rng.uniformInt(csv.size() + 64);
        std::vector<Message> frames =
            buildStream(jobId, csv, chunkBytes, ServedResult{});

        // Interleave Progress frames (legal anywhere in the byte
        // stream; the dispatch layer keeps them out of the
        // assembler).
        std::vector<Message> stream;
        for (const Message &f : frames) {
            if (rng.uniformInt(3) == 0)
                stream.push_back(encodeProgress(
                    {jobId + 1, rng.uniform(0.0, 5.0), 5.0,
                     uint64_t(rng.uniformInt(1000))}));
            stream.push_back(f);
        }

        int mutation = int(seed % 4);
        bool expectOk = mutation == 0;
        if (mutation == 1 && stream.size() > 1) {
            // Truncate: drop a suffix (stream never completes).
            stream.resize(1 + rng.uniformInt(stream.size() - 1));
        } else if (mutation == 2) {
            // Frames after ResultEnd.
            stream.push_back(
                encodeResultChunk({jobId, 0, {0x41, 0x42}}));
        } else if (mutation == 3) {
            // Corrupt one frame: flip the end-frame hash.
            ResultEndData end = decodeResultEnd(stream.back());
            end.trajectoryHash ^= (1ULL << rng.uniformInt(64));
            stream.back() = encodeResultEnd(end);
        }

        // Serialize everything and push through a MessageBuffer in
        // random fragments — chunk boundaries never align with frame
        // boundaries.
        std::vector<uint8_t> wire;
        for (const Message &m : stream)
            serializeMessage(m, wire);
        MessageBuffer mb;
        ResultStreamAssembler assembler(jobId);
        bool violated = false;
        size_t pos = 0;
        while (pos < wire.size()) {
            size_t n = 1 + rng.uniformInt(4096);
            n = std::min(n, wire.size() - pos);
            mb.append(wire.data() + pos, n);
            pos += n;
            for (;;) {
                Message m;
                std::string err;
                FrameStatus st = mb.next(m, &err);
                if (st != FrameStatus::Ok)
                    break;
                if (m.type == MsgType::Progress)
                    continue; // dispatched, never assembled
                if (violated || assembler.complete()) {
                    // A real client dropped the connection already;
                    // later frames go unread.
                    continue;
                }
                try {
                    assembler.feed(m);
                } catch (const ProtocolError &) {
                    violated = true;
                }
            }
        }
        if (expectOk) {
            ASSERT_FALSE(violated);
            ASSERT_TRUE(assembler.complete());
            EXPECT_EQ(assembler.takeResult().result.trajectoryCsv,
                      csv);
        } else if (mutation == 1) {
            // Truncation drops the ResultEnd: the stream must be
            // visibly incomplete, never a silently short result.
            EXPECT_FALSE(assembler.complete());
        } else {
            // Mutations 2 and 3 must be detected, not absorbed:
            // either a ProtocolError fired or (mutation 2) the
            // stream completed validly before the trailing garbage,
            // which the connection-level dispatch would then reject.
            EXPECT_TRUE(violated || assembler.complete());
        }
    }
}

TEST(ServeProto, MalformedPayloadsThrowNotCrash)
{
    // Truncated SubmitMission payload.
    Message m = encodeSubmitMission(core::MissionSpec{});
    m.payload.resize(m.payload.size() / 2);
    EXPECT_THROW(decodeSubmitMission(m), std::exception);

    // Wrong type for a decoder.
    EXPECT_THROW(decodeQueryStatus(encodeServerStats()),
                 ProtocolError);

    // Out-of-range enum byte.
    Message rej = encodeRejected({RejectReason::QueueFull, ""});
    rej.payload[0] = 0x7f;
    EXPECT_THROW(decodeRejected(rej), ProtocolError);

    // Oversized string length field.
    Message err = encodeErrorReply("x");
    err.payload[0] = 0xff;
    err.payload[1] = 0xff;
    err.payload[2] = 0xff;
    err.payload[3] = 0x7f;
    EXPECT_THROW(decodeErrorReply(err), std::exception);
}

// ============================================================= framing

namespace {

/** Push a stream through a MessageBuffer in random chunks, draining
 *  after every append (mirrors test_framing_fuzz::pushChunked). */
void
pushChunkedServe(MessageBuffer &mb, const std::vector<uint8_t> &stream,
                 Rng &rng, std::vector<Message> &decoded)
{
    bool dead = false;
    size_t pos = 0;
    while (pos < stream.size()) {
        size_t chunk = 1 + rng.uniformInt(257);
        if (chunk > stream.size() - pos)
            chunk = stream.size() - pos;
        mb.append(stream.data() + pos, chunk);
        pos += chunk;

        size_t guard = stream.size() / Message::kHeaderBytes + 2;
        for (;;) {
            ASSERT_GT(guard--, 0u) << "decoder loop did not terminate";
            Message m;
            std::string err;
            FrameStatus st = mb.next(m, &err);
            if (st == FrameStatus::Ok) {
                ASSERT_FALSE(dead)
                    << "Ok after Malformed: poison did not stick";
                ASSERT_TRUE(isValidMsgType(uint8_t(m.type)));
                ASSERT_LE(m.payload.size(), kMaxServePayloadBytes);
                decoded.push_back(std::move(m));
                continue;
            }
            if (st == FrameStatus::Malformed) {
                EXPECT_FALSE(err.empty());
                dead = true;
            }
            break;
        }
    }
}

} // namespace

TEST(ServeFraming, RandomBytesNeverCrashOrHang)
{
    for (uint64_t seed = 1; seed <= 200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 7919);
        std::vector<uint8_t> noise(rng.uniformInt(4096));
        for (uint8_t &b : noise)
            b = uint8_t(rng.uniformInt(256));
        MessageBuffer mb;
        std::vector<Message> decoded;
        pushChunkedServe(mb, noise, rng, decoded);
        if (HasFatalFailure())
            return;
    }
}

TEST(ServeFraming, RoundTripSurvivesArbitraryFragmentation)
{
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 104729);

        core::MissionSpec spec;
        spec.seed = rng.next();
        spec.velocity = rng.uniform(0.5, 10.0);
        ResultChunkData chunk;
        chunk.jobId = rng.next();
        chunk.seq = uint32_t(rng.uniformInt(1000));
        chunk.bytes.resize(rng.uniformInt(5000), 0x78);
        ResultEndData end;
        end.jobId = chunk.jobId;
        end.state = JobState::Done;
        end.encoding = TrajectoryEncoding::Binary;
        end.chunkCount = chunk.seq + 1;
        end.payloadBytes = chunk.bytes.size();
        end.trajectoryHash = rng.next();
        end.payloadHash = rng.next();
        end.result.collisions = rng.next();

        std::vector<Message> sent{
            encodeSubmitMission(spec),
            encodeQueryStatus(rng.next()),
            encodeFetchResult(rng.next(),
                              rng.uniformInt(2) == 0
                                  ? TrajectoryEncoding::Csv
                                  : TrajectoryEncoding::Binary),
            encodeCancelMission(rng.next()),
            encodeServerStats(),
            encodeShutdown(rng.uniformInt(2) == 0),
            encodeSubmitOk({rng.next(), uint32_t(rng.uniformInt(100))}),
            encodeRejected({RejectReason::ClientCap, "cap"}),
            encodeResultChunk(chunk),
            encodeResultEnd(end),
            encodeProgress({rng.next(), rng.uniform(0.0, 10.0), 10.0,
                            rng.next() % 100000}),
            encodeShutdownReply(),
            encodeErrorReply("some error"),
        };
        std::vector<uint8_t> stream;
        for (const Message &m : sent)
            serializeMessage(m, stream);

        MessageBuffer mb;
        std::vector<Message> got;
        pushChunkedServe(mb, stream, rng, got);
        if (HasFatalFailure())
            return;

        ASSERT_EQ(got.size(), sent.size());
        for (size_t i = 0; i < sent.size(); ++i) {
            EXPECT_EQ(got[i].type, sent[i].type) << "message " << i;
            EXPECT_EQ(got[i].payload, sent[i].payload)
                << "message " << i;
        }
    }
}

TEST(ServeFraming, HeaderValidatedBeforeAllocation)
{
    // Unknown type byte.
    {
        MessageBuffer mb;
        uint8_t bad[] = {0x55, 1, 0, 0, 0, 9};
        mb.append(bad, sizeof(bad));
        Message m;
        std::string err;
        EXPECT_EQ(mb.next(m, &err), FrameStatus::Malformed);
        EXPECT_FALSE(err.empty());
        // Poison sticks even if valid bytes follow.
        std::vector<uint8_t> good;
        serializeMessage(encodeServerStats(), good);
        mb.append(good.data(), good.size());
        EXPECT_EQ(mb.next(m, &err), FrameStatus::Malformed);
    }
    // Length above the bound: Malformed immediately, no NeedMore wait.
    {
        MessageBuffer mb;
        uint32_t huge = uint32_t(kMaxServePayloadBytes + 1);
        uint8_t hdr[] = {uint8_t(MsgType::SubmitMission),
                         uint8_t(huge), uint8_t(huge >> 8),
                         uint8_t(huge >> 16), uint8_t(huge >> 24)};
        mb.append(hdr, sizeof(hdr));
        Message m;
        EXPECT_EQ(mb.next(m), FrameStatus::Malformed);
    }
    // Length exactly at the bound with a partial payload: NeedMore.
    {
        MessageBuffer mb;
        uint32_t len = uint32_t(kMaxServePayloadBytes);
        uint8_t hdr[] = {uint8_t(MsgType::ErrorReply), uint8_t(len),
                         uint8_t(len >> 8), uint8_t(len >> 16),
                         uint8_t(len >> 24)};
        mb.append(hdr, sizeof(hdr));
        Message m;
        EXPECT_EQ(mb.next(m), FrameStatus::NeedMore);
    }
}

// ============================================= served-result parity

TEST(ServeServer, GoldenParityOverTcp)
{
    ServerConfig cfg;
    cfg.workers = 3;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    for (const char *soc : {"A", "B", "C"}) {
        SCOPED_TRACE(std::string("config ") + soc);
        core::MissionSpec spec = canonicalSpec(soc);
        SubmitOutcome out = client.submit(spec);
        ASSERT_TRUE(out.accepted) << out.detail;
        ServedResult served = client.waitResult(out.jobId);

        core::MissionResult local = core::runMission(spec);
        std::string localCsv = core::trajectoryCsvString(local);
        EXPECT_EQ(fnv1a(served.trajectoryCsv), fnv1a(localCsv))
            << "served trajectory bytes drifted from the local run";
        EXPECT_EQ(served.trajectoryCsv, localCsv);
        EXPECT_EQ(served.collisions, local.collisions);
        EXPECT_EQ(served.trajectorySamples, local.trajectory.size());
        EXPECT_EQ(served.completed, local.completed);
        EXPECT_EQ(served.simulatedCycles, local.simulatedCycles);
    }
    server.stop();
}

TEST(ServeServer, FourConcurrentClientsStayBitIdentical)
{
    ServerConfig cfg;
    cfg.workers = 4;
    MissionServer server(cfg);
    server.start();
    uint16_t port = server.port();

    // Local reference hashes for the three canonical configs.
    static const char *kSocs[] = {"A", "B", "C"};
    uint64_t expect[3];
    for (int s = 0; s < 3; ++s)
        expect[s] = localTrajectoryHash(canonicalSpec(kSocs[s]));

    constexpr int kClients = 4;
    constexpr int kMissions = 8;
    std::vector<int> failures = core::parallelIndexed<int>(
        kClients, kClients, [&](size_t ci) -> int {
            int bad = 0;
            ServeClient client(port);
            std::vector<std::pair<uint64_t, int>> jobs;
            for (int m = int(ci); m < kMissions; m += kClients) {
                SubmitOutcome out =
                    client.submit(canonicalSpec(kSocs[m % 3]));
                if (!out.accepted) {
                    bad++;
                    continue;
                }
                jobs.emplace_back(out.jobId, m % 3);
            }
            for (auto [id, s] : jobs) {
                ServedResult r = client.waitResult(id);
                if (fnv1a(r.trajectoryCsv) != expect[s])
                    bad++;
            }
            return bad;
        });
    for (int b : failures)
        EXPECT_EQ(b, 0);

    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.accepted, kMissions);
    EXPECT_EQ(s.completed, kMissions);
    EXPECT_EQ(s.failed, 0u);
    server.stop();
}

// ================================================= admission control

TEST(ServeServer, QueueFullShedsLoadWithoutStallingInFlight)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxQueueDepth = 2;
    MissionServer server(cfg);
    server.pauseWorkers(); // make queue occupancy deterministic
    server.start();

    ServeClient client(server.port());
    std::vector<uint64_t> accepted;
    for (int i = 0; i < 2; ++i) {
        SubmitOutcome out = client.submit(quickSpec(uint64_t(i + 1)));
        ASSERT_TRUE(out.accepted) << out.detail;
        accepted.push_back(out.jobId);
    }
    // Queue is at capacity: further submissions are shed explicitly.
    for (int i = 0; i < 3; ++i) {
        SubmitOutcome out = client.submit(quickSpec(99));
        ASSERT_FALSE(out.accepted);
        EXPECT_EQ(out.reason, RejectReason::QueueFull);
        EXPECT_FALSE(out.detail.empty());
    }
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.rejectedQueueFull, 3u);
    EXPECT_EQ(s.queued, 2u);

    // Shedding never disturbs admitted work: resume and all accepted
    // jobs complete; the queue drains; a retry now succeeds.
    server.resumeWorkers();
    for (uint64_t id : accepted) {
        ServedResult r = client.waitResult(id);
        EXPECT_GT(r.trajectorySamples, 0u);
    }
    SubmitOutcome retry = client.submit(quickSpec(3));
    EXPECT_TRUE(retry.accepted);
    client.waitResult(retry.jobId);

    s = server.stats();
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.failed, 0u);
    server.stop();
}

TEST(ServeServer, PerClientCapLeavesOtherClientsAdmittable)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxQueueDepth = 16;
    cfg.perClientInFlight = 2;
    MissionServer server(cfg);
    server.pauseWorkers();
    server.start();

    ServeClient greedy(server.port());
    EXPECT_TRUE(greedy.submit(quickSpec(1)).accepted);
    EXPECT_TRUE(greedy.submit(quickSpec(2)).accepted);
    SubmitOutcome third = greedy.submit(quickSpec(3));
    ASSERT_FALSE(third.accepted);
    EXPECT_EQ(third.reason, RejectReason::ClientCap);

    // Another session is not penalized for the greedy one.
    ServeClient polite(server.port());
    EXPECT_TRUE(polite.submit(quickSpec(4)).accepted);

    EXPECT_EQ(server.stats().rejectedClientCap, 1u);
    server.resumeWorkers();
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 3;
    }));
    server.stop();
}

TEST(ServeServer, BadSpecsAreRejectedNotExecuted)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    core::MissionSpec bad = quickSpec();
    bad.modelDepth = 0;
    SubmitOutcome out = client.submit(bad);
    ASSERT_FALSE(out.accepted);
    EXPECT_EQ(out.reason, RejectReason::BadRequest);

    bad = quickSpec();
    bad.maxSimSeconds = -1.0;
    out = client.submit(bad);
    ASSERT_FALSE(out.accepted);
    EXPECT_EQ(out.reason, RejectReason::BadRequest);

    EXPECT_EQ(server.stats().accepted, 0u);
    server.stop();
}

TEST(ServeServer, LongMissionStreamsGoldenParityBothEncodings)
{
    // The lifted mission-length limit, end to end: a spec whose
    // trajectory CSV exceeds 8 MiB — larger than any single protocol
    // frame, and rejected outright at admission before streaming —
    // is admitted, executed (supervised, with the checkpoint-cadence
    // cap keeping snapshot overhead bounded), streamed across many
    // ResultChunk frames, and reassembles bit-identically to the
    // local runMission() of the same spec in BOTH wire encodings.
    core::MissionSpec spec = canonicalSpec("A", 2.2);
    spec.syncGranularity = 20000; // one sample every 20k cycles

    core::MissionResult local = core::runMission(spec);
    std::string localCsv = core::trajectoryCsvString(local);
    ASSERT_GT(localCsv.size(), 8u * 1024 * 1024)
        << "spec no longer produces a >8 MiB trajectory; retune";

    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port(), "127.0.0.1", 120000);

    for (TrajectoryEncoding enc : {TrajectoryEncoding::Csv,
                                   TrajectoryEncoding::Binary}) {
        SCOPED_TRACE(trajectoryEncodingName(enc));
        SubmitOutcome out = client.submit(spec);
        ASSERT_TRUE(out.accepted) << out.detail;
        ServedResult r =
            client.waitResult(out.jobId, 120000, 10, enc);
        // A Binary fetch delivers decoded samples (no CSV render on
        // the fetch path); rendering them locally must reproduce the
        // canonical CSV bit-for-bit.
        std::string servedCsv =
            !r.trajectoryCsv.empty()
                ? std::move(r.trajectoryCsv)
                : core::trajectoryCsvString(r.trajectory);
        if (enc == TrajectoryEncoding::Binary) {
            EXPECT_EQ(r.trajectory.size(), local.trajectory.size());
        }
        EXPECT_EQ(fnv1a(servedCsv), fnv1a(localCsv));
        EXPECT_TRUE(servedCsv == localCsv)
            << "streamed trajectory bytes drifted from the local run";
        EXPECT_EQ(r.trajectorySamples, local.trajectory.size());
    }

    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.streamsStarted, 2u);
    EXPECT_EQ(s.streamsCompleted, 2u);
    EXPECT_EQ(s.activeStreams, 0u);
    // ~8.8 MiB at the default 256 KiB slice: dozens of chunks per
    // stream, and the binary stream moves ~1.8x fewer payload bytes.
    EXPECT_GT(s.streamedChunks, 40u);
    EXPECT_GT(s.streamedPayloadBytes, localCsv.size());
    EXPECT_LT(s.streamedPayloadBytes, 2u * localCsv.size());
    server.stop();
}

TEST(ServeServer, ProgressEventsArriveWhileMissionRuns)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.progressIntervalPeriods = 10; // dense enough to observe
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    std::vector<ProgressEvent> seen;
    client.onProgress([&](const ProgressEvent &p) {
        seen.push_back(p);
    });

    core::MissionSpec spec = canonicalSpec("A", 4.0);
    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted) << out.detail;
    ServedResult r = client.waitResult(out.jobId);
    EXPECT_GT(r.trajectorySamples, 0u);

    ASSERT_FALSE(seen.empty())
        << "no Progress frames observed during the mission";
    double prev = -1.0;
    for (const ProgressEvent &p : seen) {
        EXPECT_EQ(p.jobId, out.jobId);
        EXPECT_GT(p.simTimeSeconds, prev); // coalesced ⇒ monotonic
        EXPECT_EQ(p.maxSimSeconds, 4.0);
        EXPECT_GT(p.samples, 0u);
        prev = p.simTimeSeconds;
    }
    EXPECT_GE(server.stats().progressEvents, seen.size());
    server.stop();
}

TEST(ServeServer, FailedJobReportsFailedStateOverTheWire)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    // Unknown SoC names pass admission (cheap validation only) and
    // throw in the worker — a Failed job, not a dead daemon.
    core::MissionSpec spec = quickSpec();
    spec.socName = "Z";
    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted) << out.detail;

    ServedResult r;
    JobState state = JobState::Unknown;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (!client.tryFetchResult(out.jobId, r, &state)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(state, JobState::Failed);
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.failureReason.empty());
    EXPECT_EQ(server.stats().failed, 1u);
    server.stop();
}

TEST(ServeServer, FetchReleasesResultAndRetentionIsBounded)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetainedResults = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    // A completed fetch releases the record — via the client's
    // hash-verified AckResult, sent once the reassembled stream
    // passed local verification (not by the fetch itself).
    SubmitOutcome a = client.submit(quickSpec(1));
    ASSERT_TRUE(a.accepted);
    ServedResult r = client.waitResult(a.jobId);
    EXPECT_GT(r.trajectorySamples, 0u);
    EXPECT_EQ(server.stats().resultsAcked, 1u);
    EXPECT_EQ(client.status(a.jobId).state, JobState::Unknown);
    EXPECT_THROW(client.waitResult(a.jobId, 500), ProtocolError);

    // Unfetched terminal jobs are bounded by the retention FIFO: with
    // capacity 1, finishing a third job evicts the second unfetched.
    SubmitOutcome b = client.submit(quickSpec(2));
    SubmitOutcome c = client.submit(quickSpec(3));
    ASSERT_TRUE(b.accepted);
    ASSERT_TRUE(c.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 3;
    }));
    EXPECT_EQ(client.status(b.jobId).state, JobState::Unknown);
    EXPECT_EQ(client.status(c.jobId).state, JobState::Done);
    ServedResult rc = client.waitResult(c.jobId);
    EXPECT_GT(rc.trajectorySamples, 0u);
    server.stop();
}

TEST(ServeServer, StalledReaderDoesNotBlockOtherClients)
{
    // One client that requests its (large) result and then never
    // reads must cost only its own connection: other sessions stay
    // serviceable the whole time, and the stalled connection is
    // dropped — mid-stream — once its reply makes no progress for
    // sendTimeoutMs. The stream backlog cap bounds how much of the
    // stalled stream is ever generated into server memory.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.sendTimeoutMs = 2000;
    cfg.sendBufferBytes = 4096;  // shrink kernel buffering so the
                                 // ~90 KiB stream actually stalls
    cfg.resultChunkBytes = 4096; // many chunks...
    cfg.streamBacklogBytes = 8192; // ...but only ~2 in flight
    MissionServer server(cfg);
    server.start();

    ServeClient observer(server.port());

    // Raw non-reading socket with a tiny receive window.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // Submit the canonical mission (~90 KiB of trajectory CSV). The
    // daemon assigns it job id 1 — it is the first submission.
    std::vector<uint8_t> wire;
    serializeMessage(encodeSubmitMission(canonicalSpec("A")), wire);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              ssize_t(wire.size()));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));

    // Ask for the result, then never read a byte of it. The stream
    // opens (the record stays retained until an ack that will never
    // come) and wedges mid-flight.
    wire.clear();
    serializeMessage(encodeFetchResult(1), wire);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              ssize_t(wire.size()));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.streamsStarted == 1 && s.activeStreams == 1;
    }));

    // While that stream is wedged, other clients are serviced at
    // full speed (well under the 2 s stall deadline) — no
    // head-of-line blocking through the shared IO loop.
    auto t0 = std::chrono::steady_clock::now();
    ServerStatsSnapshot s = observer.serverStats();
    double statsMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    EXPECT_LT(statsMs, 1500.0);
    EXPECT_EQ(s.connectionsOpen, 2u);
    EXPECT_EQ(s.streamsCompleted, 0u);
    SubmitOutcome out = observer.submit(quickSpec(9));
    ASSERT_TRUE(out.accepted);
    EXPECT_GT(observer.waitResult(out.jobId).trajectorySamples, 0u);

    // The stalled connection is dropped after the progress deadline;
    // its half-sent stream dies with it (never "completed"), and
    // everything else keeps running.
    ASSERT_TRUE(eventually(
        server,
        [](const ServerStatsSnapshot &st) {
            return st.connectionsOpen == 1 && st.activeStreams == 0;
        },
        15000));
    EXPECT_EQ(server.stats().streamsCompleted, 1u)
        << "only the observer's own fetch should have completed";
    ::close(fd);
    EXPECT_TRUE(observer.submit(quickSpec(10)).accepted);
    server.stop();
}

TEST(ServeServer, DisconnectMidStreamKeepsJobFetchable)
{
    // A client that starts a fetch, reads part of the stream, and
    // vanishes loses only its own stream: the job record is NOT
    // released by the fetch (release needs the hash-verified
    // AckResult), so the result stays retained and a later client —
    // or the same one, reconnected — fetches the identical bytes.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.sendBufferBytes = 4096;
    cfg.resultChunkBytes = 4096;
    cfg.streamBacklogBytes = 8192;
    MissionServer server(cfg);
    server.start();

    ServeClient observer(server.port());

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    std::vector<uint8_t> wire;
    serializeMessage(encodeSubmitMission(canonicalSpec("A")), wire);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              ssize_t(wire.size()));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));
    EXPECT_GT(server.stats().retainedResultBytes, 0u);

    wire.clear();
    serializeMessage(encodeFetchResult(1), wire);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              ssize_t(wire.size()));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.activeStreams == 1;
    }));
    // Opening the stream does NOT release the record: the result
    // stays retained (and thus resumable) until the client acks it.
    EXPECT_GT(server.stats().retainedResultBytes, 0u);
    EXPECT_EQ(observer.status(1).state, JobState::Done);
    EXPECT_EQ(observer.cancel(1).outcome, CancelOutcome::AlreadyDone);

    // Read a few chunks' worth, then vanish mid-stream.
    uint8_t buf[8192];
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_GT(got, 0);
    ::close(fd);

    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.connectionsOpen == 1 && s.activeStreams == 0;
    }));
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.streamsStarted, 1u);
    EXPECT_EQ(s.streamsCompleted, 0u);
    EXPECT_GT(s.retainedResultBytes, 0u);

    // The interrupted fetch cost nothing: the observer now fetches
    // the very same job and gets bit-identical bytes; its verified
    // ack is what finally releases the record.
    ServedResult refetched = observer.waitResult(1);
    EXPECT_EQ(fnv1a(refetched.trajectoryCsv),
              localTrajectoryHash(canonicalSpec("A")));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &st) {
        return st.resultsAcked == 1 && st.retainedResultBytes == 0;
    }));
    EXPECT_EQ(observer.status(1).state, JobState::Unknown);

    // The daemon is fully serviceable afterwards.
    SubmitOutcome out = observer.submit(quickSpec(5));
    ASSERT_TRUE(out.accepted);
    EXPECT_GT(observer.waitResult(out.jobId).trajectorySamples, 0u);
    server.stop();
}

TEST(ServeServer, RetentionByteBoundEvictsOldestKeepsNewest)
{
    // The retention FIFO is bounded by actual retained bytes, not
    // just job count: with a 1-byte budget every completion evicts
    // all older unfetched results, but the newest one is never
    // evicted by the byte bound — a single oversized result stays
    // fetchable rather than evaporating as it finishes.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetainedResults = 256; // count bound out of the picture
    cfg.maxRetainedResultBytes = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    SubmitOutcome a = client.submit(quickSpec(1));
    SubmitOutcome b = client.submit(quickSpec(2));
    SubmitOutcome c = client.submit(quickSpec(3));
    ASSERT_TRUE(a.accepted && b.accepted && c.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 3;
    }));

    // Only the newest terminal result survives the byte bound.
    EXPECT_EQ(client.status(a.jobId).state, JobState::Unknown);
    EXPECT_EQ(client.status(b.jobId).state, JobState::Unknown);
    EXPECT_EQ(client.status(c.jobId).state, JobState::Done);
    uint64_t retained = server.stats().retainedResultBytes;
    EXPECT_GT(retained, 0u);

    // Fetching it empties the byte account entirely — the account
    // tracks live payload, not history.
    ServedResult r = client.waitResult(c.jobId);
    EXPECT_GT(r.trajectorySamples, 0u);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.retainedResultBytes == 0;
    }));
    server.stop();
}

// ================================================== session lifecycle

TEST(ServeServer, CancelDequeuesQueuedJob)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.pauseWorkers();
    server.start();

    ServeClient client(server.port());
    SubmitOutcome out = client.submit(quickSpec());
    ASSERT_TRUE(out.accepted);

    CancelInfo c = client.cancel(out.jobId);
    EXPECT_EQ(c.outcome, CancelOutcome::Dequeued);
    EXPECT_EQ(client.status(out.jobId).state, JobState::Cancelled);
    EXPECT_THROW(client.waitResult(out.jobId, 1000), ProtocolError);
    EXPECT_EQ(client.cancel(999999).outcome,
              CancelOutcome::UnknownJob);
    EXPECT_EQ(client.status(999999).state, JobState::Unknown);

    EXPECT_EQ(server.stats().cancelled, 1u);
    server.resumeWorkers();
    server.stop();
}

TEST(ServeServer, ClientDisconnectMidMissionDoesNotKillServer)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    core::MissionSpec spec = canonicalSpec("A"); // ~0.3 s of wall time
    uint64_t runningJob = 0;
    uint64_t queuedJob = 0;
    {
        ServeClient doomed(server.port());
        SubmitOutcome a = doomed.submit(spec);
        ASSERT_TRUE(a.accepted);
        runningJob = a.jobId;
        // Wait until it is actually running, then queue another.
        ASSERT_TRUE(eventually(server,
                               [](const ServerStatsSnapshot &s) {
                                   return s.running == 1;
                               }));
        SubmitOutcome b = doomed.submit(quickSpec(7));
        ASSERT_TRUE(b.accepted);
        queuedJob = b.jobId;
        // Destructor closes the socket mid-mission.
    }

    // The server must retire the session: its queued job is shed, the
    // running mission finishes (orphaned), nothing crashes.
    ASSERT_TRUE(eventually(server, [&](const ServerStatsSnapshot &s) {
        return s.connectionsOpen == 0 && s.cancelled == 1 &&
               s.completed == 1 && s.running == 0;
    }));

    // A new session still gets served, and the orphaned result stays
    // fetchable by job id with bit-identical bytes.
    ServeClient fresh(server.port());
    ServedResult r = fresh.waitResult(runningJob, 30000);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec));
    EXPECT_EQ(fresh.status(queuedJob).state, JobState::Cancelled);
    EXPECT_TRUE(fresh.submit(quickSpec(8)).accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 2;
    }));
    server.stop();
}

TEST(ServeServer, MalformedStreamDropsConnectionOnly)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient observer(server.port());
    EXPECT_EQ(observer.serverStats().malformed, 0u);

    // Raw garbage through a plain socket: the server must drop that
    // connection and count it, not crash or stall other sessions.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
              ssize_t(sizeof(garbage)));
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.malformed >= 1;
    }));
    ::close(fd);

    // The server is still fully serviceable.
    EXPECT_TRUE(observer.submit(quickSpec()).accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));
    server.stop();
}

TEST(ServeServer, CleanShutdownDrainsInFlightJobs)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    SubmitOutcome a = client.submit(quickSpec(1));
    SubmitOutcome b = client.submit(quickSpec(2));
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);

    client.shutdownServer(/*drain=*/true);
    // New submissions are refused while draining (if the window is
    // still open; the server may already have drained and closed).
    try {
        SubmitOutcome late = client.submit(quickSpec(3));
        EXPECT_FALSE(late.accepted);
        if (!late.accepted) {
            EXPECT_EQ(late.reason, RejectReason::ShuttingDown);
        }
    } catch (const bridge::TransportError &) {
        // Drain finished first and the connection was closed — also a
        // clean shutdown.
    }

    server.waitForShutdown();
    EXPECT_FALSE(server.running());
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.completed, 2u); // both in-flight jobs ran to the end
    EXPECT_EQ(s.failed, 0u);
}

TEST(ServeServer, ImmediateShutdownShedsQueueButFinishesRunning)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    SubmitOutcome a = client.submit(quickSpec(1));
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.running == 1;
    }));
    SubmitOutcome b = client.submit(quickSpec(2));
    ASSERT_TRUE(b.accepted);

    server.stop(/*drain=*/false);
    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.completed, 1u); // the running mission finished
    EXPECT_EQ(s.cancelled, 1u); // the queued one was shed
}

TEST(ServeServer, EphemeralPortsNeverCollide)
{
    // Two daemons asking for port 0 concurrently get distinct ports
    // (the PR-1-era fixed-port race), and both serve traffic.
    MissionServer s1{ServerConfig{}};
    MissionServer s2{ServerConfig{}};
    EXPECT_NE(s1.port(), 0);
    EXPECT_NE(s2.port(), 0);
    EXPECT_NE(s1.port(), s2.port());
    s1.start();
    s2.start();
    ServeClient c1(s1.port());
    ServeClient c2(s2.port());
    EXPECT_EQ(c1.serverStats().connectionsOpen, 1u);
    EXPECT_EQ(c2.serverStats().connectionsOpen, 1u);
    s1.stop();
    s2.stop();
}

TEST(ServeServer, ListenerFailureThrowsInsteadOfAborting)
{
    // Binding a port that is already taken must surface as a
    // TransportError a daemon can catch — not a process abort
    // (PR 1 panic→throw policy, extended to the listener path).
    bridge::TcpListener first(0);
    EXPECT_THROW(bridge::TcpListener second(first.port()),
                 bridge::TransportError);
}

// ========================================= durability & crash recovery

namespace {

/** Fresh scratch directory for a journaled server (build-tree CWD). */
std::string
serveScratchDir(const std::string &name)
{
    std::filesystem::path dir = "serve_test_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/**
 * A raw protocol connection for driving the wire directly (ack
 * handshakes, resume offsets) — things ServeClient does implicitly.
 */
struct RawConn
{
    int fd = -1;
    MessageBuffer rx;

    explicit RawConn(uint16_t port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ~RawConn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void send(const Message &m)
    {
        std::vector<uint8_t> wire;
        serializeMessage(m, wire);
        ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
                  ssize_t(wire.size()));
    }

    /** Next non-Progress frame (blocking). */
    Message next()
    {
        for (;;) {
            Message m;
            std::string err;
            FrameStatus st = rx.next(m, &err);
            if (st == FrameStatus::Ok) {
                if (m.type == MsgType::Progress)
                    continue;
                return m;
            }
            if (st == FrameStatus::Malformed)
                throw ProtocolError("raw frame: " + err);
            uint8_t buf[65536];
            ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
            if (got <= 0)
                throw bridge::TransportError("raw recv failed");
            rx.append(buf, size_t(got));
        }
    }

    Message request(const Message &m)
    {
        send(m);
        return next();
    }

    /** Drain one result stream; returns the payload bytes and fills
     *  @p end. Fails the test on anything but chunks + end. */
    std::string drainStream(ResultEndData &end)
    {
        std::string bytes;
        for (;;) {
            Message m = next();
            if (m.type == MsgType::ResultChunk) {
                ResultChunkData c = decodeResultChunk(m);
                bytes.append(c.bytes.begin(), c.bytes.end());
                continue;
            }
            if (m.type == MsgType::ResultEnd) {
                end = decodeResultEnd(m);
                return bytes;
            }
            ADD_FAILURE() << "unexpected stream frame type 0x"
                          << std::hex << unsigned(m.type);
            return bytes;
        }
    }
};

} // namespace

TEST(ServeDurability, AckProtocolVerifiesHashBeforeRelease)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    core::MissionSpec spec = quickSpec(1);
    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));
    uint64_t hash = localTrajectoryHash(spec);

    RawConn raw(server.port());
    ASSERT_GE(raw.fd, 0);
    // A wrong hash must NOT release: the client's copy is suspect, so
    // the server keeps the record for a clean refetch.
    AckInfo ack = decodeAckReply(
        raw.request(encodeAckResult(out.jobId, hash ^ 1)));
    EXPECT_EQ(ack.outcome, AckOutcome::HashMismatch);
    EXPECT_EQ(client.status(out.jobId).state, JobState::Done);

    // The right hash releases exactly once; a retried ack (the
    // reconnect case) reports UnknownJob, which clients treat as
    // success.
    ack = decodeAckReply(raw.request(encodeAckResult(out.jobId, hash)));
    EXPECT_EQ(ack.outcome, AckOutcome::Released);
    ack = decodeAckReply(raw.request(encodeAckResult(out.jobId, hash)));
    EXPECT_EQ(ack.outcome, AckOutcome::UnknownJob);
    EXPECT_EQ(client.status(out.jobId).state, JobState::Unknown);

    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.resultsAcked, 1u);
    EXPECT_EQ(s.retainedResultBytes, 0u);
    server.stop();
}

TEST(ServeDurability, ResumeOffsetStreamsExactSuffix)
{
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    core::MissionSpec spec = quickSpec(2);
    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted);
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));
    std::string localCsv =
        core::trajectoryCsvString(core::runMission(spec));
    ASSERT_GT(localCsv.size(), 64u);

    RawConn raw(server.port());
    ASSERT_GE(raw.fd, 0);

    // Resume from a mid-payload offset: the stream is exactly the
    // byte suffix, numbered from 0, and ResultEnd still describes the
    // TOTAL payload (size + full-payload hash) so the assembler's
    // final verification covers prefix + suffix together.
    uint64_t offset = localCsv.size() / 3;
    raw.send(encodeFetchResult(out.jobId, TrajectoryEncoding::Csv,
                               offset));
    ResultEndData end;
    std::string suffix = raw.drainStream(end);
    EXPECT_EQ(suffix, localCsv.substr(offset));
    EXPECT_EQ(end.payloadBytes, localCsv.size());
    EXPECT_EQ(end.trajectoryHash, fnv1a(localCsv));
    EXPECT_EQ(end.state, JobState::Done);

    // An offset beyond the payload is a client bug: explicit error,
    // job untouched.
    Message reply = raw.request(encodeFetchResult(
        out.jobId, TrajectoryEncoding::Csv, localCsv.size() + 1));
    EXPECT_EQ(reply.type, MsgType::ErrorReply);
    EXPECT_EQ(client.status(out.jobId).state, JobState::Done);

    // A binary resume must be record-aligned.
    reply = raw.request(encodeFetchResult(
        out.jobId, TrajectoryEncoding::Binary,
        kTrajectoryBinaryRecordBytes + 1));
    EXPECT_EQ(reply.type, MsgType::ErrorReply);

    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.streamsResumed, 1u);
    EXPECT_GT(s.retainedResultBytes, 0u); // never released: no ack
    server.stop();
}

TEST(ServeDurability, IdempotentResubmitReturnsOriginalJob)
{
    // In-memory dedup (no journal): a resubmission carrying the same
    // key lands on the original job instead of running twice.
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.pauseWorkers();
    server.start();
    ServeClient client(server.port());

    SubmitOutcome first = client.submit(quickSpec(1), "retry-0");
    ASSERT_TRUE(first.accepted);
    SubmitOutcome again = client.submit(quickSpec(1), "retry-0");
    ASSERT_TRUE(again.accepted);
    EXPECT_EQ(again.jobId, first.jobId);
    SubmitOutcome other = client.submit(quickSpec(2), "retry-1");
    ASSERT_TRUE(other.accepted);
    EXPECT_NE(other.jobId, first.jobId);

    ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.dedupedSubmits, 1u);
    EXPECT_EQ(s.accepted, 2u); // the dup never entered the queue
    server.resumeWorkers();
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &st) {
        return st.completed == 2;
    }));
    server.stop();
}

TEST(ServeDurability, RestartReplaysResultsAndDedups)
{
    // The tentpole, in-process: a journaled daemon is torn down with
    // unfetched terminal results; a new daemon on the same directory
    // replays them — fetchable bit-identically — and still honors the
    // idempotency key of the pre-restart submission.
    std::string dir = serveScratchDir("restart");
    core::MissionSpec spec = quickSpec(1);
    uint64_t jobId = 0;
    uint16_t port = 0;
    {
        ServerConfig cfg;
        cfg.workers = 1;
        cfg.journalDir = dir;
        MissionServer server(cfg);
        server.start();
        port = server.port();
        ServeClient client(port);
        SubmitOutcome out = client.submit(spec, "restart-key");
        ASSERT_TRUE(out.accepted);
        jobId = out.jobId;
        ASSERT_TRUE(eventually(server,
                               [](const ServerStatsSnapshot &s) {
                                   return s.completed == 1;
                               }));
        server.stop(); // result never fetched, never acked
    }

    ServerConfig cfg;
    cfg.workers = 1;
    cfg.journalDir = dir;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());

    EXPECT_EQ(server.stats().journalReplayedJobs, 1u);
    EXPECT_EQ(client.status(jobId).state, JobState::Done);

    // The old incarnation's retry lands on the original job...
    SubmitOutcome dup = client.submit(spec, "restart-key");
    ASSERT_TRUE(dup.accepted);
    EXPECT_EQ(dup.jobId, jobId);
    EXPECT_EQ(server.stats().dedupedSubmits, 1u);

    // ...and its bytes are exactly what the mission produced.
    ServedResult r = client.waitResult(jobId);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec));
    EXPECT_GT(r.trajectorySamples, 0u);

    // Fresh ids never collide with pre-restart ones.
    SubmitOutcome fresh = client.submit(quickSpec(2));
    ASSERT_TRUE(fresh.accepted);
    EXPECT_GT(fresh.jobId, jobId);
    client.waitResult(fresh.jobId);
    server.stop();
}

TEST(ServeDurability, InterruptedSubmissionRequeuesAndRuns)
{
    // A journal holding only a Submit record — the daemon died after
    // admission, before the mission finished, with no checkpoint on
    // disk. The restarted daemon re-queues the job, runs it cold, and
    // the result is indistinguishable from an uninterrupted run.
    std::string dir = serveScratchDir("requeue");
    core::MissionSpec spec = quickSpec(3);
    {
        JobJournal j(dir, journalFingerprint(true));
        j.appendSubmit(1, "interrupted-key", spec);
    }

    ServerConfig cfg;
    cfg.workers = 1;
    cfg.journalDir = dir;
    MissionServer server(cfg);
    server.start();
    EXPECT_EQ(server.stats().journalReplayedJobs, 1u);

    ServeClient client(server.port());

    // The replayed key dedups (the record keeps its key until the
    // verified ack releases it), and new ids start past the replayed
    // high-water mark.
    SubmitOutcome dup = client.submit(spec, "interrupted-key");
    ASSERT_TRUE(dup.accepted);
    EXPECT_EQ(dup.jobId, 1u);
    SubmitOutcome fresh = client.submit(quickSpec(4));
    ASSERT_TRUE(fresh.accepted);
    EXPECT_EQ(fresh.jobId, 2u);

    ServedResult r = client.waitResult(1);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec));
    EXPECT_EQ(server.stats().warmRestoredJobs, 0u); // no checkpoint
    client.waitResult(2);
    server.stop();
}

TEST(ServeDurability, WarmRestoreResumesFromPersistedCheckpoint)
{
    // The daemon died mid-mission but its per-job checkpoint ring
    // made it to disk: the restarted daemon warm-restores instead of
    // re-running from zero, and restore being bit-exact means the
    // served trajectory still equals the uninterrupted run's.
    std::string dir = serveScratchDir("warm");
    core::MissionSpec spec = canonicalSpec("A", 3.0);

    // Persist a checkpoint exactly where rosed would have: run the
    // mission under a supervisor writing to the job's checkpoint
    // path. (The file keeps the latest pre-death snapshot; a real
    // crash just stops the overwrites earlier.)
    {
        JobJournal j(dir, journalFingerprint(true));
        j.appendSubmit(1, "warm-key", spec);
        core::SupervisorConfig sup;
        sup.checkpointPeriods = 40;
        sup.checkpointPath = j.checkpointPathFor(1);
        core::MissionSupervisor supervisor(spec.toConfig(), sup);
        supervisor.run();
        ASSERT_GT(supervisor.stats().checkpointsTaken, 0u);
    }

    ServerConfig cfg;
    cfg.workers = 1;
    cfg.journalDir = dir;
    MissionServer server(cfg);
    server.start();
    EXPECT_EQ(server.stats().journalReplayedJobs, 1u);

    ServeClient client(server.port());
    ServedResult r = client.waitResult(1);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec))
        << "warm-restored trajectory drifted from the clean run";
    EXPECT_EQ(server.stats().warmRestoredJobs, 1u)
        << "checkpoint was ignored — the job ran cold";
    server.stop();
}

TEST(ServeDurability, CorruptCheckpointFallsBackToColdRun)
{
    // Garbage where the checkpoint should be must never fail the
    // mission: resume is best-effort, the cold path is the answer.
    std::string dir = serveScratchDir("coldfb");
    core::MissionSpec spec = quickSpec(5);
    {
        JobJournal j(dir, journalFingerprint(true));
        j.appendSubmit(1, "", spec);
        std::ofstream f(j.checkpointPathFor(1), std::ios::binary);
        f << "this is not a ROSECKPT file";
    }

    ServerConfig cfg;
    cfg.workers = 1;
    cfg.journalDir = dir;
    MissionServer server(cfg);
    server.start();
    ServeClient client(server.port());
    ServedResult r = client.waitResult(1);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec));
    EXPECT_EQ(server.stats().warmRestoredJobs, 0u);
    EXPECT_EQ(server.stats().completed, 1u);
    server.stop();
}

TEST(ServeDurability, ReconnectingClientSurvivesDroppedConnections)
{
    // The client half under chaos: every connection severed while a
    // result is pending. A reconnect-enabled client redials with
    // backoff, its auto-minted idempotency key makes the resubmission
    // land on the original job, and the fetched bytes stay
    // bit-identical.
    ServerConfig cfg;
    cfg.workers = 1;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port());
    ReconnectConfig rc;
    rc.backoff.baseMs = 1;
    rc.backoff.capMs = 20;
    rc.maxEpisodes = 50;
    client.enableReconnect(rc);

    core::MissionSpec spec = quickSpec(6);
    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted);
    EXPECT_FALSE(out.idempotencyKey.empty())
        << "reconnect-enabled submits must be idempotent";
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.completed == 1;
    }));

    // Sever everything; the next client call transparently redials.
    server.dropConnections();
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.connectionsOpen == 0;
    }));

    SubmitOutcome retry = client.submit(spec, out.idempotencyKey);
    ASSERT_TRUE(retry.accepted);
    EXPECT_EQ(retry.jobId, out.jobId) << "retry ran the mission twice";
    EXPECT_GE(client.reconnects(), 1u);

    ServedResult r = client.waitResult(out.jobId);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), localTrajectoryHash(spec));
    EXPECT_EQ(client.status(out.jobId).state, JobState::Unknown);
    server.stop();
}

TEST(ServeDurability, KillLoopStreamStaysBitIdentical)
{
    // Kill-restart-loop chaos on the stream path: connections are
    // severed repeatedly while a multi-megabyte result streams. The
    // client's resume offsets + the server's retained record must
    // reassemble the exact bytes no matter where the cuts land (the
    // assembler's full-payload hash check makes any drift fatal).
    core::MissionSpec spec = canonicalSpec("A", 2.2);
    spec.syncGranularity = 20000; // ~8.8 MiB of trajectory CSV

    ServerConfig cfg;
    cfg.workers = 1;
    cfg.resultChunkBytes = 16 * 1024; // many chunks
    cfg.streamBacklogBytes = 64 * 1024;
    cfg.sendBufferBytes = 16 * 1024;
    cfg.pollIntervalMs = 2;
    MissionServer server(cfg);
    server.start();

    ServeClient client(server.port(), "127.0.0.1", 120000);
    ReconnectConfig rc;
    rc.backoff.baseMs = 1;
    rc.backoff.capMs = 10;
    rc.maxEpisodes = 500;
    client.enableReconnect(rc);

    SubmitOutcome out = client.submit(spec);
    ASSERT_TRUE(out.accepted) << out.detail;
    ASSERT_TRUE(eventually(
        server,
        [](const ServerStatsSnapshot &s) { return s.completed == 1; },
        60000));

    // Guarantee at least one reconnect (sever before the fetch), then
    // keep cutting while the stream runs.
    server.dropConnections();
    ASSERT_TRUE(eventually(server, [](const ServerStatsSnapshot &s) {
        return s.connectionsOpen == 0;
    }));
    std::atomic<bool> done{false};
    std::thread chaos([&] {
        for (int i = 0; i < 40 && !done.load(); ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(15));
            server.dropConnections();
        }
    });

    ServedResult r;
    try {
        r = client.waitResult(out.jobId, 120000);
    } catch (...) {
        done.store(true);
        chaos.join();
        throw;
    }
    done.store(true);
    chaos.join();

    core::MissionResult local = core::runMission(spec);
    std::string localCsv = core::trajectoryCsvString(local);
    EXPECT_EQ(fnv1a(r.trajectoryCsv), fnv1a(localCsv));
    EXPECT_TRUE(r.trajectoryCsv == localCsv)
        << "bytes drifted across reconnect-resume";
    EXPECT_GE(client.reconnects(), 1u);
    server.stop();
}
