/**
 * @file
 * Tests for the SoC engine layer: Table 2 configurations, the action
 * engine (budget accounting, stalls, activity factors), and RV32IM
 * programs as bridge-driving workloads.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "bridge/rose_bridge.hh"
#include "bridge/transport.hh"
#include "rv/assembler.hh"
#include "soc/config.hh"
#include "soc/rv_workload.hh"
#include "soc/socsim.hh"

using namespace rose;
using namespace rose::soc;

// ---------------------------------------------------------------- config

TEST(SocConfig, Table2Matrix)
{
    SocConfig a = configA(), b = configB(), c = configC();
    EXPECT_EQ(a.cpu, CpuModel::Boom);
    EXPECT_TRUE(a.hasGemmini);
    EXPECT_EQ(b.cpu, CpuModel::Rocket);
    EXPECT_TRUE(b.hasGemmini);
    EXPECT_EQ(c.cpu, CpuModel::Boom);
    EXPECT_FALSE(c.hasGemmini);
    EXPECT_EQ(a.cpuName(), "3-wide BOOM");
    EXPECT_EQ(b.cpuName(), "Rocket");
    EXPECT_EQ(c.acceleratorName(), "None");
}

TEST(SocConfig, RocketSlowerHost)
{
    CpuParams r = rocketParams(), b = boomParams();
    EXPECT_GT(r.mmioAccessCycles, b.mmioAccessCycles);
    EXPECT_LT(r.hostBytesPerCycle, b.hostBytesPerCycle);
    EXPECT_LT(r.flopsPerCycle, b.flopsPerCycle);
    EXPECT_GT(r.perLayerFixedCycles, b.perLayerFixedCycles);
}

TEST(SocConfig, UnknownNameThrows)
{
    // Throws (not a fatal abort) so batch slots and the mission
    // supervisor can isolate a bad spec.
    EXPECT_THROW(configByName("Z"), std::invalid_argument);
}

// ---------------------------------------------------------------- engine

namespace {

/** Scripted workload: replays a fixed list of actions, then halts. */
class ScriptWorkload : public Workload
{
  public:
    explicit ScriptWorkload(std::vector<Action> script)
        : script_(std::move(script)) {}

    std::string workloadName() const override { return "script"; }

    Action
    next(const SocContext &ctx) override
    {
        lastCtx_ = ctx;
        if (idx_ >= script_.size())
            return Action::halt();
        return script_[idx_++];
    }

    SocContext lastCtx_;

  private:
    std::vector<Action> script_;
    size_t idx_ = 0;
};

struct EngineHarness
{
    std::unique_ptr<bridge::Transport> hostEnd;
    std::unique_ptr<bridge::Transport> bridgeEnd;
    std::unique_ptr<bridge::RoseBridge> bridge;

    EngineHarness()
    {
        auto [a, b] = bridge::makeInProcPair();
        hostEnd = std::move(a);
        bridgeEnd = std::move(b);
        bridge = std::make_unique<bridge::RoseBridge>(*bridgeEnd);
    }

    void
    grant(Cycles c)
    {
        hostEnd->send(bridge::encodeSyncGrant(c));
    }
};

} // namespace

TEST(SocSim, BudgetExactlyConsumed)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(300, Unit::Cpu),
                       Action::compute(500, Unit::Accel)});
    SocSim sim(*h.bridge, wl, configA());

    h.grant(1000);
    sim.runPeriod();
    EXPECT_EQ(sim.now(), 1000u);
    EXPECT_EQ(sim.stats().cpuBusyCycles, 300u);
    EXPECT_EQ(sim.stats().accelBusyCycles, 500u);
    EXPECT_EQ(sim.stats().haltIdleCycles, 200u);
    EXPECT_TRUE(sim.halted());
    EXPECT_TRUE(h.bridge->stalled());
}

TEST(SocSim, ActionSpansPeriods)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(2500, Unit::Accel)});
    SocSim sim(*h.bridge, wl, configA());

    for (int i = 0; i < 3; ++i) {
        h.grant(1000);
        sim.runPeriod();
    }
    EXPECT_EQ(sim.now(), 3000u);
    EXPECT_EQ(sim.stats().accelBusyCycles, 2500u);
    EXPECT_EQ(sim.stats().haltIdleCycles, 500u);
}

TEST(SocSim, WaitRxStallsToBoundary)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(100, Unit::Cpu),
                       Action::waitRx(),
                       Action::compute(50, Unit::Cpu)});
    SocSim sim(*h.bridge, wl, configA());

    // Period 1: compute 100 then stall 900 (RX empty).
    h.grant(1000);
    sim.runPeriod();
    EXPECT_EQ(sim.stats().rxStallCycles, 900u);
    EXPECT_FALSE(sim.halted());

    // Deliver a data packet; period 2 completes the wait.
    h.hostEnd->send(bridge::encodeDepthResp(1.0));
    h.grant(1000);
    sim.runPeriod();
    EXPECT_EQ(sim.stats().cpuBusyCycles, 150u);
    EXPECT_TRUE(sim.halted());
}

TEST(SocSim, ActivityFactorComputed)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(250, Unit::Accel)});
    SocSim sim(*h.bridge, wl, configA());
    h.grant(1000);
    sim.runPeriod();
    EXPECT_DOUBLE_EQ(sim.stats().accelActivityFactor(), 0.25);
}

TEST(SocSim, SyncDoneSentEachPeriod)
{
    EngineHarness h;
    ScriptWorkload wl({});
    SocSim sim(*h.bridge, wl, configA());
    h.grant(500);
    sim.runPeriod();
    bridge::Packet p;
    bool done_seen = false;
    while (h.hostEnd->recv(p))
        done_seen |= p.type == bridge::PacketType::SyncDone &&
                     bridge::decodeSyncDone(p) == 500;
    EXPECT_TRUE(done_seen);
}

TEST(SocSim, ContextExposesTimeAndRx)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(100, Unit::Cpu)});
    SocSim sim(*h.bridge, wl, configA());
    h.hostEnd->send(bridge::encodeDepthResp(2.0));
    h.grant(1000);
    sim.runPeriod();
    // The last next() call (the halt) saw the RX packet and a
    // mid-period timestamp.
    EXPECT_EQ(wl.lastCtx_.rxPackets, 1u);
    EXPECT_EQ(wl.lastCtx_.now, 100u);
}

TEST(SocSim, RunWithoutGrantThrows)
{
    // A lost SyncGrant (fault injection) or out-of-order lockstep
    // drive surfaces as a catchable TransportError, so a supervised
    // mission can restore a checkpoint instead of dying.
    EngineHarness h;
    ScriptWorkload wl({});
    SocSim sim(*h.bridge, wl, configA());
    EXPECT_THROW(sim.runPeriod(), bridge::TransportError);
}

// ----------------------------------------------------------- RvWorkload

TEST(RvWorkload, ComputeChunksCarryTimingCycles)
{
    EngineHarness h;
    rv::Core core;
    rv::Program p = rv::assemble(R"(
        li a0, 1000
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )");
    core.loadProgram(p.words);
    rv::RocketTiming tm;
    RvWorkload wl(core, tm, "countdown");
    SocSim sim(*h.bridge, wl, configA());

    h.grant(100'000);
    sim.runPeriod();
    EXPECT_TRUE(sim.halted());
    // ~2000 retired instructions at CPI ~1 -> ~2000+ busy cycles.
    EXPECT_GT(sim.stats().cpuBusyCycles, 2000u);
    EXPECT_LT(sim.stats().cpuBusyCycles, 10'000u);
    EXPECT_EQ(core.stopReason(), rv::StopReason::Ecall);
}

TEST(RvWorkload, FenceWaitsForBridgeRx)
{
    // A target program that parks on fence until the host sends a
    // packet, then reads RX_COUNT via MMIO and stores it to memory.
    EngineHarness h;
    rv::Core core;
    attachMmioDevice(core, *h.bridge);
    rv::Program p = rv::assemble(R"(
        fence              # wait for IO
        lui a0, 0x40000
        lw a1, 0(a0)       # RX_COUNT
        li a2, 0x100
        sw a1, 0(a2)
        ecall
    )");
    core.loadProgram(p.words);
    rv::RocketTiming tm;
    RvWorkload wl(core, tm, "fence-wait");
    SocSim sim(*h.bridge, wl, configA());

    // Period 1: the program fences and stalls (no RX data).
    h.grant(10'000);
    sim.runPeriod();
    EXPECT_FALSE(sim.halted());
    EXPECT_GT(sim.stats().rxStallCycles, 0u);

    // Period 2: host data arrives; program resumes and reads it.
    h.hostEnd->send(bridge::encodeDepthResp(3.0));
    h.grant(10'000);
    sim.runPeriod();
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(core.loadWord(0x100), 1u);
}

TEST(RvWorkload, MmioCostsShowInTiming)
{
    EngineHarness h;
    rv::Core core;
    attachMmioDevice(core, *h.bridge);
    rv::Program p = rv::assemble(R"(
        lui a0, 0x40000
        li a1, 100
    loop:
        lw a2, 0(a0)       # uncached MMIO read
        addi a1, a1, -1
        bnez a1, loop
        ecall
    )");
    core.loadProgram(p.words);
    rv::RocketTiming tm;
    RvWorkload wl(core, tm, "mmio-loop");
    SocSim sim(*h.bridge, wl, configA());
    h.grant(1'000'000);
    sim.runPeriod();
    EXPECT_TRUE(sim.halted());
    // 100 MMIO reads at ~40 cycles each dominate the loop.
    EXPECT_GT(sim.stats().cpuBusyCycles, 100u * 40u);
    EXPECT_EQ(tm.stats().mmioAccesses, 100u);
}

// ---------------------------------------------------------------- energy

#include "soc/energy.hh"

TEST(Energy, ComponentsAddUp)
{
    SocStats s;
    s.totalCycles = 1'000'000;
    s.cpuBusyCycles = 400'000;
    s.accelBusyCycles = 100'000;
    s.ioBusyCycles = 50'000;
    s.rxStallCycles = 450'000;

    EnergyModel m;
    double expected_pj = 400'000.0 * m.boomActivePj +
                         100'000.0 * m.accelActivePj +
                         50'000.0 * m.ioPj + 450'000.0 * m.cpuIdlePj +
                         1'000'000.0 * m.staticPj;
    EXPECT_NEAR(m.energyJoules(s, CpuModel::Boom), expected_pj * 1e-12,
                1e-18);
}

TEST(Energy, RocketActiveCheaperThanBoom)
{
    SocStats s;
    s.totalCycles = 1'000'000;
    s.cpuBusyCycles = 1'000'000;
    EnergyModel m;
    EXPECT_LT(m.energyJoules(s, CpuModel::Rocket),
              m.energyJoules(s, CpuModel::Boom));
}

TEST(Energy, AveragePowerSane)
{
    // A mostly-idle 1 GHz SoC should land in the tens of milliwatts.
    SocStats s;
    s.totalCycles = 1'000'000'000; // 1 s
    s.rxStallCycles = 900'000'000;
    s.cpuBusyCycles = 100'000'000;
    EnergyModel m;
    double watts = m.averagePowerWatts(s, CpuModel::Boom, 1e9);
    EXPECT_GT(watts, 0.02);
    EXPECT_LT(watts, 0.2);
}

// ----------------------------------------------------------------- trace

#include <cstdio>
#include <fstream>

#include "soc/trace.hh"

TEST(Trace, RecordsComputeStallAndIdle)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(300, Unit::Cpu, "work"),
                       Action::waitRx("wait")});
    SocSim sim(*h.bridge, wl, configA());
    ActionTrace trace;
    sim.setTrace(&trace);

    h.grant(1000);
    sim.runPeriod();
    // Expect: compute(300) + stall(700).
    ASSERT_GE(trace.events().size(), 2u);
    EXPECT_EQ(trace.events()[0].kind, TraceEvent::Kind::Compute);
    EXPECT_EQ(trace.events()[0].duration, 300u);
    EXPECT_STREQ(trace.events()[0].label, "work");
    EXPECT_EQ(trace.events()[1].kind, TraceEvent::Kind::Stall);
    EXPECT_EQ(trace.events()[1].duration, 700u);
    // Events tile the timeline without overlap.
    EXPECT_EQ(trace.events()[1].start,
              trace.events()[0].start + trace.events()[0].duration);
}

TEST(Trace, ChromeJsonWellFormed)
{
    EngineHarness h;
    ScriptWorkload wl({Action::compute(100, Unit::Accel, "gemm")});
    SocSim sim(*h.bridge, wl, configA());
    ActionTrace trace;
    sim.setTrace(&trace);
    h.grant(500);
    sim.runPeriod();

    std::string path = "/tmp/rose_test_trace.json";
    trace.writeChromeTrace(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(all.front(), '[');
    EXPECT_NE(all.find("\"gemmini\""), std::string::npos);
    EXPECT_NE(all.find("\"gemm\""), std::string::npos);
    EXPECT_NE(all.find("\"ph\": \"X\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, BoundedCapacity)
{
    ActionTrace trace(/*max_events=*/3);
    for (Cycles i = 0; i < 10; ++i)
        trace.record({i, 1, Unit::Cpu, "", TraceEvent::Kind::Compute});
    EXPECT_EQ(trace.events().size(), 3u);
}
