/**
 * @file
 * Tests for the mission supervisor (watchdog + checkpoint/retry) and
 * the degraded-mode fallback controller: a fault profile that kills an
 * unsupervised mission must complete under supervision; watchdogs
 * (position bound, wall clock) must trip and report; supervision must
 * be invisible on a clean run (golden hash); and a crashing batch slot
 * must not take down its neighbors.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/batch.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/supervisor.hh"
#include "util/hash.hh"

using namespace rose;
using namespace rose::core;

namespace {

/** The golden canonical mission (mirrors tests/test_golden.cc). */
core::MissionSpec
canonicalSpec(const std::string &soc_name)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = soc_name;
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = 1;
    spec.maxSimSeconds = 10.0;
    return spec;
}

/**
 * A fault profile hostile enough to abort an unsupervised mission:
 * with the sync-control protection off, a single dropped SyncGrant or
 * SyncDone stalls the lockstep and surfaces as a TransportError.
 */
bridge::FaultConfig
hostileFaults()
{
    bridge::FaultConfig f;
    f.enabled = true;
    f.protectSyncPackets = false;
    f.dropProb = 0.002;
    f.seed = 0xfa017;
    return f;
}

} // namespace

TEST(Supervisor, RecoversMissionThatAbortsUnsupervised)
{
    core::MissionSpec spec = canonicalSpec("A");
    spec.maxSimSeconds = 6.0;
    spec.faults = hostileFaults();
    CosimConfig cfg = spec.toConfig();

    // Unsupervised: the first lost sync packet is fatal.
    MissionResult bare = runMission(spec);
    ASSERT_EQ(bare.status, MissionStatus::Crashed);
    EXPECT_FALSE(bare.failureReason.empty());
    EXPECT_LT(bare.missionTime, spec.maxSimSeconds);

    // Supervised: checkpoint every 20 periods, reroll the injector
    // seed on every retry so the same grant is not re-dropped.
    SupervisorConfig sup;
    sup.checkpointPeriods = 20;
    sup.checkpointRingSize = 4;
    sup.maxRetries = 50;
    sup.faultPolicy = FaultRetryPolicy::RerollSeed;
    MissionSupervisor supervisor(cfg, sup);
    MissionResult r = supervisor.run();

    EXPECT_NE(r.status, MissionStatus::Crashed)
        << "supervised mission still crashed: " << r.failureReason;
    // The mission ran to its simulated-time limit (the canonical
    // corridor takes longer than 6 s), not to an abort.
    EXPECT_GE(r.missionTime, spec.maxSimSeconds - 1e-9);
    EXPECT_GT(supervisor.stats().restores, 0u)
        << "the hostile profile never tripped — test is vacuous";
    EXPECT_GT(supervisor.stats().checkpointsTaken, 0u);
    EXPECT_LE(supervisor.stats().retriesUsed, sup.maxRetries);
}

TEST(Supervisor, DisablePolicyFinishesFirstRetry)
{
    core::MissionSpec spec = canonicalSpec("A");
    spec.maxSimSeconds = 6.0;
    spec.faults = hostileFaults();
    CosimConfig cfg = spec.toConfig();

    SupervisorConfig sup;
    sup.checkpointPeriods = 20;
    sup.maxRetries = 3;
    sup.faultPolicy = FaultRetryPolicy::Disable;
    MissionSupervisor supervisor(cfg, sup);
    MissionResult r = supervisor.run();

    EXPECT_NE(r.status, MissionStatus::Crashed)
        << "clean retry still crashed: " << r.failureReason;
    EXPECT_GE(r.missionTime, spec.maxSimSeconds - 1e-9);
    // One failure, one clean rebuild: faults off means no second trip.
    EXPECT_LE(supervisor.stats().retriesUsed, 1);
}

TEST(Supervisor, CleanRunMatchesGoldenTrace)
{
    // Supervision (including periodic checkpoint capture) must be
    // bit-invisible on a mission that never trips a watchdog.
    constexpr uint64_t kGoldenA = 0x2b24ad514f06c3cbULL;

    CosimConfig cfg = canonicalSpec("A").toConfig();
    SupervisorConfig sup;
    sup.checkpointPeriods = 100;
    MissionSupervisor supervisor(cfg, sup);
    MissionResult r = supervisor.run();

    EXPECT_EQ(r.status, MissionStatus::TimedOut); // corridor > 10 s
    EXPECT_EQ(supervisor.stats().restores, 0u);
    EXPECT_EQ(fnv1a(core::trajectoryCsvString(r)), kGoldenA)
        << "supervised clean run diverged from the golden trace";
}

TEST(Supervisor, PositionBoundWatchdogTripsAndExhausts)
{
    // A bound tighter than the corridor: flight deterministically
    // exceeds it, every restore replays into the same wall, and the
    // supervisor gives up with a diagnosis instead of looping forever.
    CosimConfig cfg = canonicalSpec("A").toConfig();
    SupervisorConfig sup;
    sup.checkpointPeriods = 50;
    sup.maxRetries = 2;
    sup.positionBoundM = 5.0;
    MissionSupervisor supervisor(cfg, sup);
    MissionResult r = supervisor.run();

    EXPECT_EQ(r.status, MissionStatus::Crashed);
    EXPECT_NE(r.failureReason.find("position out of bounds"),
              std::string::npos)
        << r.failureReason;
    EXPECT_EQ(supervisor.stats().retriesUsed, 2);
    EXPECT_GT(supervisor.stats().restores, 0u);
}

TEST(Supervisor, WallClockBudgetCutsMissionOff)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    cfg.maxSimSeconds = 60.0;
    SupervisorConfig sup;
    sup.wallClockBudgetSeconds = 0.05;
    MissionSupervisor supervisor(cfg, sup);
    MissionResult r = supervisor.run();

    EXPECT_EQ(r.status, MissionStatus::TimedOut);
    EXPECT_NE(r.failureReason.find("wall-clock"), std::string::npos);
    EXPECT_LT(r.missionTime, 60.0);
}

TEST(Supervisor, DiskResumeMatchesUninterruptedRun)
{
    // Crash-recovery contract rosed leans on: a mission resumed from
    // a persisted checkpoint file (a previous incarnation's snapshot)
    // finishes with a trajectory bit-identical to an uninterrupted
    // run — restore is bit-exact and the remainder is deterministic.
    constexpr uint64_t kGoldenA = 0x2b24ad514f06c3cbULL;
    const std::string path = "supervisor_test_resume.ckpt";
    std::remove(path.c_str());

    CosimConfig cfg = canonicalSpec("A").toConfig();
    {
        SupervisorConfig sup;
        sup.checkpointPeriods = 100;
        sup.checkpointPath = path;
        MissionSupervisor first(cfg, sup);
        MissionResult r = first.run();
        ASSERT_GT(first.stats().checkpointsTaken, 0u);
        ASSERT_EQ(fnv1a(core::trajectoryCsvString(r)), kGoldenA);
        // The file now holds the last snapshot the "dead" incarnation
        // persisted; a real crash just stops the overwrites earlier.
    }

    SupervisorConfig sup;
    sup.checkpointPeriods = 100;
    sup.resumeFromPath = path;
    MissionSupervisor resumed(cfg, sup);
    MissionResult r = resumed.run();
    EXPECT_EQ(resumed.stats().diskResumes, 1u)
        << "resume silently fell back to a cold start";
    EXPECT_EQ(fnv1a(core::trajectoryCsvString(r)), kGoldenA)
        << "disk-resumed trajectory diverged from the golden trace";
    std::remove(path.c_str());
}

TEST(Supervisor, CorruptResumeFileFallsBackToColdStart)
{
    // resumeFromPath is best-effort by contract: garbage bytes (or a
    // checkpoint for a different config) must cost nothing but a log
    // note — never a failed mission, never an abort.
    constexpr uint64_t kGoldenA = 0x2b24ad514f06c3cbULL;
    const std::string path = "supervisor_test_corrupt.ckpt";
    {
        std::ofstream f(path, std::ios::binary);
        f << "ROSECKPT but not really \x01\x02\x03 garbage";
    }

    SupervisorConfig sup;
    sup.checkpointPeriods = 100;
    sup.resumeFromPath = path;
    MissionSupervisor supervisor(canonicalSpec("A").toConfig(), sup);
    MissionResult r = supervisor.run();
    EXPECT_EQ(supervisor.stats().diskResumes, 0u);
    EXPECT_EQ(fnv1a(core::trajectoryCsvString(r)), kGoldenA)
        << "cold fallback diverged from the golden trace";
    std::remove(path.c_str());

    // A missing file is equally benign.
    sup.resumeFromPath = "no_such_checkpoint_anywhere.ckpt";
    MissionSupervisor missing(canonicalSpec("A").toConfig(), sup);
    EXPECT_EQ(fnv1a(core::trajectoryCsvString(missing.run())),
              kGoldenA);
    EXPECT_EQ(missing.stats().diskResumes, 0u);
}

TEST(Supervisor, BadConfigurationIsNotRetried)
{
    CosimConfig cfg = canonicalSpec("A").toConfig();
    cfg.env.worldName = "atlantis";
    MissionSupervisor supervisor(cfg, {});
    MissionResult r = supervisor.run();

    EXPECT_EQ(r.status, MissionStatus::Crashed);
    EXPECT_NE(r.failureReason.find("configuration error"),
              std::string::npos);
    EXPECT_EQ(supervisor.stats().retriesUsed, 0);
}

// ------------------------------------------------------- degraded mode

TEST(DegradedMode, SensorStarvationTripsClassicalFallback)
{
    // Heavy loss on the data plane (sync control protected): sensor
    // retries exhaust and the app drops to the classical controller
    // instead of stalling mid-corridor.
    core::MissionSpec spec = canonicalSpec("A");
    spec.maxSimSeconds = 6.0;
    spec.degradedMode = true;
    spec.faults.enabled = true;
    spec.faults.dropProb = 0.35;
    spec.faults.protectSyncPackets = true;

    MissionResult r = runMission(spec);

    ASSERT_FALSE(r.degradedIntervals.empty())
        << "loss profile never exhausted the sensor retries";
    const runtime::DegradedInterval &d = r.degradedIntervals.front();
    EXPECT_EQ(d.reason, "sensor-timeout");
    EXPECT_GT(d.commands, 0u);
    EXPECT_GT(d.endCycle, d.startCycle);
    // Degraded flight still makes forward progress.
    EXPECT_GT(r.distanceTravelled, 1.0);
    if (r.completed) {
        EXPECT_EQ(r.status, MissionStatus::Degraded);
    }
}

TEST(DegradedMode, DisabledByDefaultKeepsRetrying)
{
    core::MissionSpec spec = canonicalSpec("A");
    spec.maxSimSeconds = 3.0;
    spec.faults.enabled = true;
    spec.faults.dropProb = 0.35;
    spec.faults.protectSyncPackets = true;

    MissionResult r = runMission(spec);
    EXPECT_TRUE(r.degradedIntervals.empty());
}

// ------------------------------------------------------ batch isolation

TEST(BatchIsolation, CrashingSlotDoesNotPoisonTheBatch)
{
    // Three missions on two worker threads; the middle one has an
    // invalid SoC name and crashes at construction. The batch must
    // return results for every slot.
    std::vector<core::MissionSpec> specs;
    for (int i = 0; i < 3; ++i) {
        core::MissionSpec s = canonicalSpec("A");
        s.maxSimSeconds = 1.0;
        s.seed = uint64_t(i + 1);
        specs.push_back(s);
    }
    specs[1].socName = "Z";

    std::vector<MissionResult> results = runMissionBatch(specs, 2);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[1].status, MissionStatus::Crashed);
    EXPECT_NE(results[1].failureReason.find("unknown SoC config"),
              std::string::npos);

    for (size_t i : {size_t(0), size_t(2)}) {
        SCOPED_TRACE(i);
        EXPECT_NE(results[i].status, MissionStatus::Crashed);
        EXPECT_GT(results[i].trajectory.size(), 0u);
        EXPECT_GT(results[i].missionTime, 0.9);
    }

    // Determinism: the surviving slots match their serial runs.
    MissionResult serial0 = runMission(specs[0]);
    EXPECT_EQ(core::trajectoryCsvString(results[0]),
              core::trajectoryCsvString(serial0));
}

TEST(BatchIsolation, MidMissionCrashStillReportsOtherSlots)
{
    // Slot 0 crashes *mid-mission* (unprotected sync traffic under
    // loss), not at construction; slot 1 is clean.
    std::vector<core::MissionSpec> specs;
    core::MissionSpec faulty = canonicalSpec("A");
    faulty.maxSimSeconds = 6.0;
    faulty.faults.enabled = true;
    faulty.faults.protectSyncPackets = false;
    faulty.faults.dropProb = 0.002;
    specs.push_back(faulty);

    core::MissionSpec clean = canonicalSpec("A");
    clean.maxSimSeconds = 1.0;
    specs.push_back(clean);

    std::vector<MissionResult> results = runMissionBatch(specs, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, MissionStatus::Crashed);
    EXPECT_NE(results[1].status, MissionStatus::Crashed);
    EXPECT_GT(results[1].missionTime, 0.9);
}

TEST(MissionStatus, NamesAreStable)
{
    EXPECT_STREQ(missionStatusName(MissionStatus::Completed),
                 "completed");
    EXPECT_STREQ(missionStatusName(MissionStatus::TimedOut),
                 "timed-out");
    EXPECT_STREQ(missionStatusName(MissionStatus::Crashed), "crashed");
    EXPECT_STREQ(missionStatusName(MissionStatus::Degraded),
                 "degraded");
}
