/**
 * @file
 * Tests of the lockstep synchronizer (Algorithm 1) against a scripted
 * SoC side: grants, frame advance per Equation 1, request/response
 * latency semantics (responses become visible one period later), and
 * actuation dispatch.
 */

#include <gtest/gtest.h>

#include "bridge/rose_bridge.hh"
#include "bridge/target_driver.hh"
#include "bridge/transport.hh"
#include "sync/synchronizer.hh"

using namespace rose;
using namespace rose::bridge;
using namespace rose::sync;

namespace {

/** Co-simulation harness with a hand-driven SoC side. */
struct Harness
{
    env::EnvConfig envCfg;
    std::unique_ptr<env::EnvSim> env;
    std::unique_ptr<Transport> syncEnd;
    std::unique_ptr<Transport> bridgeEnd;
    std::unique_ptr<RoseBridge> bridge;
    std::unique_ptr<TargetDriver> driver;
    std::unique_ptr<Synchronizer> sync;

    explicit Harness(SyncConfig cfg = {})
    {
        envCfg.turbulenceForceStd = 0.0;
        // Frame rate must match the sync clocks (100 Hz default here).
        envCfg.frameHz = cfg.clocks.envFrameHz;
        env = std::make_unique<env::EnvSim>(envCfg);
        auto [a, b] = makeInProcPair();
        syncEnd = std::move(a);
        bridgeEnd = std::move(b);
        bridge = std::make_unique<RoseBridge>(*bridgeEnd);
        driver = std::make_unique<TargetDriver>(*bridge);
        sync = std::make_unique<Synchronizer>(*env, *syncEnd, cfg);
        sync->configure();
        bridge->hostService();
    }

    /** Run one full period with an optional SoC-side script. */
    template <typename Fn>
    void
    period(Fn &&soc_script)
    {
        sync->beginPeriod();
        bridge->hostService(); // deliver grant + queued responses
        soc_script();
        bridge->completeSync(bridge->cycleBudget());
        bridge->consumeCycles(bridge->cycleBudget());
        bridge->hostService(); // flush TX + SyncDone
        sync->endPeriod();
    }

    void
    idlePeriod()
    {
        period([] {});
    }
};

} // namespace

TEST(Synchronizer, ConfigureSetsBridgeStepSize)
{
    SyncConfig cfg;
    cfg.cyclesPerSync = 20 * kMegaCycles;
    Harness h(cfg);
    EXPECT_EQ(h.bridge->cyclesPerSync(), 20 * kMegaCycles);
}

TEST(Synchronizer, Equation1FrameAdvance)
{
    // 10M cycles at 1 GHz against 100 Hz frames -> 1 frame per period.
    SyncConfig cfg;
    cfg.cyclesPerSync = 10 * kMegaCycles;
    cfg.clocks = {1.0e9, 100.0};
    Harness h(cfg);
    h.idlePeriod();
    EXPECT_EQ(h.env->frameCount(), 1u);
    // 400M cycles -> 40 frames per period (Figure 16's extreme).
    SyncConfig coarse;
    coarse.cyclesPerSync = 400 * kMegaCycles;
    coarse.clocks = {1.0e9, 100.0};
    Harness h2(coarse);
    h2.idlePeriod();
    EXPECT_EQ(h2.env->frameCount(), 40u);
}

TEST(Synchronizer, FractionalFramesCarry)
{
    // 15M cycles at 1 GHz / 100 Hz = 1.5 frames per period: frame
    // counts must alternate 1, 2, 1, 2 without drift.
    SyncConfig cfg;
    cfg.cyclesPerSync = 15 * kMegaCycles;
    cfg.clocks = {1.0e9, 100.0};
    Harness h(cfg);
    for (int i = 0; i < 10; ++i)
        h.idlePeriod();
    EXPECT_EQ(h.env->frameCount(), 15u);
}

TEST(Synchronizer, GrantBudgetReachesBridge)
{
    SyncConfig cfg;
    cfg.cyclesPerSync = 1000;
    Harness h(cfg);
    h.sync->beginPeriod();
    h.bridge->hostService();
    EXPECT_EQ(h.bridge->cycleBudget(), 1000u);
    h.bridge->completeSync(1000);
    h.bridge->consumeCycles(1000);
    h.bridge->hostService();
    h.sync->endPeriod();
    EXPECT_EQ(h.sync->stats().donesReceived, 1u);
}

TEST(Synchronizer, ImageRequestAnsweredNextPeriod)
{
    SyncConfig cfg;
    cfg.cyclesPerSync = 10 * kMegaCycles;
    Harness h(cfg);

    // Period 1: SoC requests an image. No response yet.
    h.period([&] { ASSERT_TRUE(h.driver->txSend(encodeImageReq())); });
    EXPECT_EQ(h.sync->stats().imageRequests, 1u);
    EXPECT_EQ(h.driver->rxCount(), 0u);

    // Period 2: the response is delivered at the boundary.
    bool got = false;
    h.period([&] {
        auto p = h.driver->rxPop();
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->type, PacketType::ImageResp);
        env::Image img = decodeImageResp(*p);
        EXPECT_EQ(img.width, h.envCfg.camera.width);
        got = true;
    });
    EXPECT_TRUE(got);
}

TEST(Synchronizer, ImuAndDepthServed)
{
    Harness h;
    h.period([&] {
        ASSERT_TRUE(h.driver->txSend(encodeImuReq()));
        ASSERT_TRUE(h.driver->txSend(encodeDepthReq()));
    });
    h.period([&] {
        auto a = h.driver->rxPop();
        auto b = h.driver->rxPop();
        ASSERT_TRUE(a && b);
        EXPECT_EQ(a->type, PacketType::ImuResp);
        EXPECT_EQ(b->type, PacketType::DepthResp);
        // Straight down the tunnel: depth is max range.
        EXPECT_NEAR(decodeDepthResp(*b), h.envCfg.depthMaxRange, 0.5);
    });
    EXPECT_EQ(h.sync->stats().imuRequests, 1u);
    EXPECT_EQ(h.sync->stats().depthRequests, 1u);
}

TEST(Synchronizer, VelocityCommandActuatesEnvironment)
{
    Harness h;
    // Let the drone take off first (50 idle periods = 0.5 s).
    for (int i = 0; i < 200; ++i)
        h.idlePeriod();
    h.period([&] {
        ASSERT_TRUE(
            h.driver->txSend(encodeVelocityCmd({2.0, 0.0, 0.0})));
    });
    EXPECT_EQ(h.sync->stats().velocityCommands, 1u);
    EXPECT_TRUE(h.sync->lastCommand().valid);
    EXPECT_DOUBLE_EQ(h.sync->lastCommand().forward, 2.0);

    double x0 = h.env->kinematics().position.x;
    for (int i = 0; i < 300; ++i)
        h.idlePeriod();
    EXPECT_GT(h.env->kinematics().position.x, x0 + 3.0);
}

TEST(Synchronizer, StatsCountPeriods)
{
    Harness h;
    for (int i = 0; i < 5; ++i)
        h.idlePeriod();
    EXPECT_EQ(h.sync->stats().periods, 5u);
    EXPECT_EQ(h.sync->stats().grantsSent, 5u);
    EXPECT_EQ(h.sync->stats().donesReceived, 5u);
    EXPECT_NEAR(h.sync->grantedSimTime(), 5 * 0.01, 1e-9);
}

TEST(SynchronizerDeathTest, DoublBeginPanics)
{
    Harness h;
    h.sync->beginPeriod();
    EXPECT_DEATH(h.sync->beginPeriod(), "period");
}

TEST(Synchronizer, SimulationAbstractionHolds)
{
    // The SoC only ever sees data packets: after a full period with
    // sensor traffic, nothing in the RX queue is a sync packet.
    Harness h;
    h.period([&] {
        h.driver->txSend(encodeImuReq());
        h.driver->txSend(encodeDepthReq());
    });
    h.period([&] {
        while (auto p = h.driver->rxPop())
            EXPECT_TRUE(isDataPacket(p->type));
    });
}

TEST(Synchronizer, FramesPerPeriodAgreesWithSteppedFrames)
{
    // 15M cycles at 1 GHz / 100 Hz = 1.5 frames per period. The value
    // framesPerPeriod() reports must equal what the next endPeriod()
    // actually steps, including the fractional carry (1, 2, 1, 2, ...).
    SyncConfig cfg;
    cfg.cyclesPerSync = 15 * kMegaCycles;
    cfg.clocks = {1.0e9, 100.0};
    Harness h(cfg);
    for (int i = 0; i < 8; ++i) {
        Frames predicted = h.sync->framesPerPeriod();
        Frames before = h.env->frameCount();
        h.idlePeriod();
        EXPECT_EQ(h.env->frameCount() - before, predicted)
            << "period " << i;
    }
}

// -------------------------------------------- deadlines and dead peers

TEST(Synchronizer, MissingSyncDoneAbortsWithDiagnostic)
{
    // Driving the lockstep out of order (endPeriod with no SoC
    // execution) must abort loudly, not warn and plough on.
    Harness h;
    h.sync->beginPeriod();
    EXPECT_THROW(h.sync->endPeriod(), bridge::TransportError);
}

TEST(Synchronizer, TcpPeerCloseAbortsEndPeriod)
{
    env::EnvConfig ecfg;
    ecfg.turbulenceForceStd = 0.0;
    SyncConfig scfg;
    ecfg.frameHz = scfg.clocks.envFrameHz;
    env::EnvSim env(ecfg);

    auto [server, client] = TcpTransport::makeLoopbackPair();
    Synchronizer sync(env, *server, scfg);
    sync.configure();
    sync.beginPeriod();
    client.reset(); // SoC simulator dies mid-period

    try {
        sync.endPeriod();
        FAIL() << "endPeriod() must throw on a dead peer";
    } catch (const bridge::TransportError &e) {
        EXPECT_NE(std::string(e.what()).find("closed before SyncDone"),
                  std::string::npos);
    }
}

TEST(Synchronizer, TcpStalledPeerHitsSyncDeadline)
{
    env::EnvConfig ecfg;
    ecfg.turbulenceForceStd = 0.0;
    SyncConfig scfg;
    scfg.syncDeadlineMs = 100; // keep the test fast
    ecfg.frameHz = scfg.clocks.envFrameHz;
    env::EnvSim env(ecfg);

    auto [server, client] = TcpTransport::makeLoopbackPair();
    Synchronizer sync(env, *server, scfg);
    sync.configure();
    sync.beginPeriod();
    // The peer stays connected but never answers: the deadline, not an
    // infinite no-SyncDone loop, ends the period.
    try {
        sync.endPeriod();
        FAIL() << "endPeriod() must throw on a stalled peer";
    } catch (const bridge::TransportError &e) {
        EXPECT_NE(std::string(e.what()).find("deadline"),
                  std::string::npos);
    }
    EXPECT_GE(sync.stats().deadlineWaits, 1u);
}

// ------------------------------------------------ Equation 1 property

/** Equation 1 conservation across granularities: frames stepped per
 *  cycles granted must match soc_clock/frame_rate for any period. */
class SyncGranularityProperty
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SyncGranularityProperty, FrameCycleRatioConserved)
{
    SyncConfig cfg;
    cfg.cyclesPerSync = GetParam() * 100'000; // 0.1M .. 40M
    cfg.clocks = {1.0e9, 100.0};
    Harness h(cfg);
    const int periods = 50;
    for (int i = 0; i < periods; ++i)
        h.idlePeriod();

    double cycles_granted =
        double(h.sync->stats().grantsSent) * double(cfg.cyclesPerSync);
    double expected_frames =
        cycles_granted / (cfg.clocks.socClockHz / cfg.clocks.envFrameHz);
    // Fractional-frame carry keeps the long-run ratio exact to within
    // one frame.
    EXPECT_NEAR(double(h.sync->stats().framesStepped), expected_frames,
                1.0);
    // Env time and granted SoC time agree to within one frame.
    EXPECT_NEAR(h.env->simTime(), h.sync->grantedSimTime(), 0.011);
}

INSTANTIATE_TEST_SUITE_P(Granularities, SyncGranularityProperty,
                         ::testing::Values(1, 3, 7, 10, 15, 33, 100,
                                           400));
