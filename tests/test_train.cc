/**
 * @file
 * Tests for the C++ training pipeline: dataset generation, feature
 * extraction, softmax-regression heads, convergence, generalization,
 * and the train/eval domain gap (trained on tunnel, evaluated on
 * s-shape, mirroring the paper's Section 4.2.3 methodology).
 */

#include <gtest/gtest.h>

#include "dnn/train.hh"

using namespace rose;
using namespace rose::dnn;

namespace {

Dataset
tunnelSet(int samples, uint64_t seed)
{
    env::TunnelWorld world;
    DatasetConfig cfg;
    cfg.samples = samples;
    cfg.seed = seed;
    return generateDataset(world, cfg);
}

} // namespace

TEST(Dataset, GenerationShapesAndLabels)
{
    Dataset ds = tunnelSet(200, 3);
    ASSERT_EQ(ds.examples.size(), 200u);
    EXPECT_GT(ds.featureDim, 100u);
    int counts_a[3] = {0, 0, 0}, counts_l[3] = {0, 0, 0};
    for (const Example &ex : ds.examples) {
        ASSERT_EQ(ex.features.size(), ds.featureDim);
        ASSERT_GE(ex.angularLabel, 0);
        ASSERT_LE(ex.angularLabel, 2);
        ++counts_a[ex.angularLabel];
        ++counts_l[ex.lateralLabel];
        // Bias feature present and constant.
        EXPECT_FLOAT_EQ(ex.features.back(), 1.0f);
    }
    // All three classes appear in both heads.
    for (int c = 0; c < 3; ++c) {
        EXPECT_GT(counts_a[c], 10) << "angular class " << c;
        EXPECT_GT(counts_l[c], 10) << "lateral class " << c;
    }
}

TEST(Dataset, DeterministicPerSeed)
{
    Dataset a = tunnelSet(50, 7);
    Dataset b = tunnelSet(50, 7);
    for (size_t i = 0; i < a.examples.size(); ++i) {
        EXPECT_EQ(a.examples[i].angularLabel,
                  b.examples[i].angularLabel);
        EXPECT_EQ(a.examples[i].features, b.examples[i].features);
    }
}

TEST(Features, GridPlusColumnsPlusBias)
{
    env::Image img(64, 48);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = 0.5f;
    std::vector<float> f = extractFeatures(img);
    EXPECT_EQ(f.size(), size_t(16 * 12 + 64 + 1));
    // Constant image -> constant pooled features.
    EXPECT_FLOAT_EQ(f[0], 0.5f);
    EXPECT_FLOAT_EQ(f[100], 0.5f);
    EXPECT_FLOAT_EQ(f.back(), 1.0f);
}

TEST(SoftmaxHead, UntrainedIsUniform)
{
    SoftmaxHead head(5);
    std::array<float, 3> p = head.predict({1, 2, 3, 4, 5});
    EXPECT_NEAR(p[0], 1.0f / 3, 1e-6);
    EXPECT_NEAR(p[1], 1.0f / 3, 1e-6);
}

TEST(SoftmaxHead, LearnsSeparableToy)
{
    // Two features; class = sign bucket of feature 0.
    SoftmaxHead head(3);
    Rng rng(11);
    for (int iter = 0; iter < 4000; ++iter) {
        double v = rng.uniform(-1, 1);
        int label = v > 0.3 ? 0 : v < -0.3 ? 2 : 1;
        head.sgdStep({float(v), float(v * v), 1.0f}, label, 0.1, 0.0);
    }
    EXPECT_EQ(head.predictClass({0.8f, 0.64f, 1.0f}), 0);
    EXPECT_EQ(head.predictClass({-0.8f, 0.64f, 1.0f}), 2);
    EXPECT_EQ(head.predictClass({0.0f, 0.0f, 1.0f}), 1);
}

TEST(SoftmaxHead, LossDecreasesOnRepeatedExample)
{
    SoftmaxHead head(3);
    std::vector<float> x{1.0f, -0.5f, 1.0f};
    double first = head.sgdStep(x, 0, 0.1, 0.0);
    double last = 0.0;
    for (int i = 0; i < 50; ++i)
        last = head.sgdStep(x, 0, 0.1, 0.0);
    EXPECT_LT(last, first);
}

TEST(Training, BeatsChanceByWideMargin)
{
    Dataset train = tunnelSet(1500, 21);
    Dataset val = tunnelSet(400, 22);
    TrainConfig tc;
    tc.epochs = 15;
    TrainedClassifier model = trainClassifier(train, tc);
    EvalResult r = evaluate(model, val);
    // Chance is 1/3; the pipeline should land far above it.
    EXPECT_GT(r.angularAccuracy, 0.85);
    EXPECT_GT(r.lateralAccuracy, 0.80);
}

TEST(Training, MoreDataHelps)
{
    Dataset small = tunnelSet(150, 31);
    Dataset big = tunnelSet(1500, 31);
    Dataset val = tunnelSet(400, 32);
    TrainConfig tc;
    tc.epochs = 12;
    double acc_small = evaluate(trainClassifier(small, tc), val).mean();
    double acc_big = evaluate(trainClassifier(big, tc), val).mean();
    EXPECT_GT(acc_big, acc_small - 0.01);
}

TEST(Training, DeterministicGivenSeeds)
{
    Dataset train = tunnelSet(300, 41);
    Dataset val = tunnelSet(100, 42);
    TrainConfig tc;
    tc.epochs = 5;
    double a = evaluate(trainClassifier(train, tc), val).mean();
    double b = evaluate(trainClassifier(train, tc), val).mean();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Training, InferOnImagesEndToEnd)
{
    Dataset train = tunnelSet(1500, 51);
    TrainConfig tc;
    tc.epochs = 15;
    TrainedClassifier model = trainClassifier(train, tc);

    // Render a clearly-offset pose and check the lateral head.
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(53));
    env::Drone drone;
    drone.setPose({10, 1.0, 1.5}, Quat{});
    ClassifierOutput out = model.infer(cam.render(world, drone));
    ASSERT_TRUE(out.valid);
    EXPECT_EQ(out.lateral.argmax(), 0); // offset left
}

TEST(Training, DomainGapTunnelToSShape)
{
    // Paper methodology: trained on tunnel, evaluated on both. The
    // transfer to the unfamiliar (wider, curved) map must still beat
    // chance, but is allowed to be worse than in-domain accuracy.
    Dataset train = tunnelSet(1500, 61);
    TrainConfig tc;
    tc.epochs = 15;
    TrainedClassifier model = trainClassifier(train, tc);

    Dataset val_tunnel = tunnelSet(400, 62);
    env::SShapeWorld sshape;
    DatasetConfig dc;
    dc.samples = 400;
    dc.seed = 63;
    Dataset val_s = generateDataset(sshape, dc);

    double in_domain = evaluate(model, val_tunnel).mean();
    double transfer = evaluate(model, val_s).mean();
    EXPECT_GT(transfer, 0.45);           // far above 1/3 chance
    EXPECT_LE(transfer, in_domain + 0.03); // and no better than in-domain
}
