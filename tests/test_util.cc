/**
 * @file
 * Unit tests for src/util: geometry, RNG, CSV, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/csv.hh"
#include "util/geometry.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/units.hh"

using namespace rose;

// ----------------------------------------------------------------- Vec3

TEST(Vec3, Arithmetic)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    Vec3 s = a + b;
    EXPECT_DOUBLE_EQ(s.x, 5);
    EXPECT_DOUBLE_EQ(s.y, 7);
    EXPECT_DOUBLE_EQ(s.z, 9);
    Vec3 d = b - a;
    EXPECT_DOUBLE_EQ(d.x, 3);
    Vec3 m = a * 2.0;
    EXPECT_DOUBLE_EQ(m.z, 6);
    EXPECT_DOUBLE_EQ((2.0 * a).z, 6);
}

TEST(Vec3, DotCrossNorm)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
    Vec3 c = x.cross(y);
    EXPECT_DOUBLE_EQ(c.x, z.x);
    EXPECT_DOUBLE_EQ(c.y, z.y);
    EXPECT_DOUBLE_EQ(c.z, z.z);
    EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
    Vec3 n = Vec3(10, 0, 0).normalized();
    EXPECT_DOUBLE_EQ(n.x, 1.0);
    // Zero vector normalizes to zero, not NaN.
    Vec3 zn = Vec3{}.normalized();
    EXPECT_DOUBLE_EQ(zn.norm(), 0.0);
}

// ----------------------------------------------------------------- Quat

TEST(Quat, IdentityRotation)
{
    Quat q;
    Vec3 v{1, 2, 3};
    Vec3 r = q.rotate(v);
    EXPECT_NEAR(r.x, v.x, 1e-12);
    EXPECT_NEAR(r.y, v.y, 1e-12);
    EXPECT_NEAR(r.z, v.z, 1e-12);
}

TEST(Quat, AxisAngle90AboutZ)
{
    Quat q = Quat::fromAxisAngle({0, 0, 1}, kPi / 2);
    Vec3 r = q.rotate({1, 0, 0});
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
    EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Quat, RotateInverseRoundTrip)
{
    Quat q = Quat::fromEuler(0.3, -0.2, 1.1);
    Vec3 v{0.5, -1.5, 2.0};
    Vec3 rt = q.rotateInverse(q.rotate(v));
    EXPECT_NEAR(rt.x, v.x, 1e-12);
    EXPECT_NEAR(rt.y, v.y, 1e-12);
    EXPECT_NEAR(rt.z, v.z, 1e-12);
}

TEST(Quat, EulerRoundTrip)
{
    double roll = 0.2, pitch = -0.4, yaw = 2.2;
    Quat q = Quat::fromEuler(roll, pitch, yaw);
    EXPECT_NEAR(q.roll(), roll, 1e-10);
    EXPECT_NEAR(q.pitch(), pitch, 1e-10);
    EXPECT_NEAR(q.yaw(), yaw, 1e-10);
}

TEST(Quat, PitchTiltsThrustForward)
{
    // Positive pitch about +y must tilt body-z thrust toward +x; the
    // flight controller's sign conventions depend on this.
    Quat q = Quat::fromAxisAngle({0, 1, 0}, 0.2);
    Vec3 t = q.rotate({0, 0, 1});
    EXPECT_GT(t.x, 0.0);
    EXPECT_NEAR(t.y, 0.0, 1e-12);
}

TEST(Quat, RollTiltsThrustRight)
{
    // Positive roll about +x tilts thrust toward -y.
    Quat q = Quat::fromAxisAngle({1, 0, 0}, 0.2);
    Vec3 t = q.rotate({0, 0, 1});
    EXPECT_LT(t.y, 0.0);
}

TEST(Quat, NormalizeDegenerate)
{
    Quat q{0, 0, 0, 0};
    q.normalize();
    EXPECT_DOUBLE_EQ(q.w, 1.0);
}

TEST(Quat, ComposedRotationMatchesSequential)
{
    Quat a = Quat::fromAxisAngle({0, 0, 1}, 0.7);
    Quat b = Quat::fromAxisAngle({1, 0, 0}, -0.4);
    Vec3 v{1, 2, 3};
    Vec3 seq = a.rotate(b.rotate(v));
    Vec3 comp = (a * b).rotate(v);
    EXPECT_NEAR(seq.x, comp.x, 1e-12);
    EXPECT_NEAR(seq.y, comp.y, 1e-12);
    EXPECT_NEAR(seq.z, comp.z, 1e-12);
}

// ----------------------------------------------------------------- Mat3

TEST(Mat3, DiagonalApplyAndInverse)
{
    Mat3 m = Mat3::diagonal(2, 4, 8);
    Vec3 v = m * Vec3{1, 1, 1};
    EXPECT_DOUBLE_EQ(v.x, 2);
    EXPECT_DOUBLE_EQ(v.y, 4);
    EXPECT_DOUBLE_EQ(v.z, 8);
    Mat3 inv = m.diagonalInverse();
    Vec3 r = inv * v;
    EXPECT_DOUBLE_EQ(r.x, 1);
    EXPECT_DOUBLE_EQ(r.y, 1);
    EXPECT_DOUBLE_EQ(r.z, 1);
}

TEST(Mat3, MatrixProduct)
{
    Mat3 a = Mat3::diagonal(1, 2, 3);
    Mat3 b = Mat3::diagonal(4, 5, 6);
    Mat3 c = a * b;
    EXPECT_DOUBLE_EQ(c.m[0][0], 4);
    EXPECT_DOUBLE_EQ(c.m[1][1], 10);
    EXPECT_DOUBLE_EQ(c.m[2][2], 18);
}

// ---------------------------------------------------------------- angles

TEST(Angles, WrapAngle)
{
    EXPECT_NEAR(wrapAngle(3 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrapAngle(-3 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrapAngle(0.5), 0.5, 1e-12);
    EXPECT_NEAR(wrapAngle(kPi + 0.1), -kPi + 0.1, 1e-12);
}

TEST(Angles, DegRadRoundTrip)
{
    EXPECT_NEAR(rad2deg(deg2rad(123.0)), 123.0, 1e-12);
    EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    ScalarStat s;
    for (int i = 0; i < 100000; ++i)
        s.sample(r.gaussian(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(21);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(23);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.uniformInt(5);
        EXPECT_LT(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

// ------------------------------------------------------------------- CSV

TEST(Csv, HeaderAndRows)
{
    std::ostringstream os;
    CsvWriter w(os, {"a", "b"});
    w.row(1, 2.5);
    w.row("x", "y");
    EXPECT_EQ(os.str(), "a,b\n1,2.5\nx,y\n");
    EXPECT_EQ(w.rowsWritten(), 2u);
    EXPECT_EQ(w.columns(), 2u);
}

TEST(Csv, QuotesSpecialCells)
{
    std::ostringstream os;
    CsvWriter w(os, {"a"});
    w.row("he,llo");
    EXPECT_EQ(os.str(), "a\n\"he,llo\"\n");
}

TEST(CsvDeathTest, WrongArity)
{
    std::ostringstream os;
    CsvWriter w(os, {"a", "b"});
    EXPECT_DEATH(w.row(1), "cells");
}

// ----------------------------------------------------------------- Stats

TEST(Stats, ScalarBasics)
{
    ScalarStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Stats, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, Reset)
{
    ScalarStat s;
    s.sample(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, HistogramBinning)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(5.5);
    h.sample(9.999);
    h.sample(10.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
}

// ----------------------------------------------------------------- Units

TEST(Units, ClockRatioDefaults)
{
    ClockRatio r;
    // 1 GHz / 60 Hz: ~16.7M cycles per frame (Figure 6's example).
    EXPECT_EQ(r.cyclesPerFrame(), 16'666'666ULL);
    EXPECT_NEAR(r.cyclesToSeconds(1'000'000'000ULL), 1.0, 1e-12);
    EXPECT_EQ(r.secondsToCycles(2.0), 2'000'000'000ULL);
    EXPECT_NEAR(r.frameSeconds(), 1.0 / 60.0, 1e-15);
}
