/**
 * @file
 * Tests for the vehicle abstraction: quadrotor wrapper parity and the
 * Ackermann rover's kinematics, plus EnvSim running the rover.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "env/envsim.hh"
#include "env/vehicle.hh"

using namespace rose;
using namespace rose::env;

namespace {

void
runVehicle(VehicleModel &v, double seconds, double dt = 1.0 / 600.0)
{
    int steps = int(seconds / dt);
    for (int i = 0; i < steps; ++i)
        v.step(dt, Vec3{});
}

} // namespace

// ------------------------------------------------------------- factory

TEST(Vehicle, FactoryNames)
{
    DroneParams dp;
    flight::ControllerConfig cc;
    EXPECT_EQ(makeVehicle("quadrotor", dp, cc, 1.5)->vehicleName(),
              "quadrotor");
    EXPECT_EQ(makeVehicle("drone", dp, cc, 1.5)->vehicleName(),
              "quadrotor");
    EXPECT_EQ(makeVehicle("rover", dp, cc, 1.5)->vehicleName(),
              "rover");
    EXPECT_EQ(makeVehicle("car", dp, cc, 1.5)->vehicleName(), "rover");
}

TEST(Vehicle, UnknownVehicleThrows)
{
    DroneParams dp;
    flight::ControllerConfig cc;
    EXPECT_THROW(makeVehicle("submarine", dp, cc, 1.5),
                 std::invalid_argument);
}

// ------------------------------------------------------------ quadrotor

TEST(QuadrotorVehicle, HoversAndTracksLikeRawLoop)
{
    QuadrotorVehicle q(DroneParams{}, flight::ControllerConfig{}, 1.5);
    q.reset({0, 0, 1.5}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 3.0;
    q.command(cmd);
    runVehicle(q, 6.0);
    flight::VehicleState s = q.state();
    EXPECT_NEAR(s.velocity.x, 3.0, 0.3);
    EXPECT_NEAR(s.position.z, 1.5, 0.15);
}

TEST(QuadrotorVehicle, SensorFrameMatchesState)
{
    QuadrotorVehicle q(DroneParams{}, flight::ControllerConfig{}, 1.5);
    q.reset({2, 1, 1.5}, 0.3);
    SensorFrame f = q.sensorFrame();
    flight::VehicleState s = q.state();
    EXPECT_DOUBLE_EQ(f.position.x, s.position.x);
    EXPECT_NEAR(f.attitude.yaw(), 0.3, 1e-9);
}

// ---------------------------------------------------------------- rover

TEST(Rover, AcceleratesToSpeedTarget)
{
    AckermannRover r;
    r.reset({0, 0, 0}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 5.0;
    r.command(cmd);
    runVehicle(r, 3.0);
    EXPECT_NEAR(r.speed(), 5.0, 0.05);
    EXPECT_GT(r.state().position.x, 10.0);
    EXPECT_NEAR(r.state().position.y, 0.0, 1e-6);
}

TEST(Rover, AccelerationLimited)
{
    RoverParams p;
    p.maxAccel = 2.0;
    AckermannRover r(p);
    r.reset({0, 0, 0}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 10.0;
    r.command(cmd);
    runVehicle(r, 1.0);
    EXPECT_NEAR(r.speed(), 2.0, 0.1); // 2 m/s^2 for 1 s
}

TEST(Rover, YawRateCommandCurves)
{
    AckermannRover r;
    r.reset({0, 0, 0}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 3.0;
    cmd.yawRate = 0.5; // CCW
    r.command(cmd);
    runVehicle(r, 4.0);
    flight::VehicleState s = r.state();
    // Heading advanced CCW; the trajectory curved left (+y).
    EXPECT_GT(s.attitude.yaw(), 0.8);
    EXPECT_GT(s.position.y, 1.0);
    // Steady-state yaw rate approximates the command.
    EXPECT_NEAR(s.bodyRates.z, 0.5, 0.1);
}

TEST(Rover, NonHolonomic)
{
    // A pure lateral command cannot translate the rover sideways; it
    // only biases steering, so motion stays along the heading.
    AckermannRover r;
    r.reset({0, 0, 0}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 0.0;
    cmd.lateral = 2.0;
    r.command(cmd);
    runVehicle(r, 2.0);
    EXPECT_NEAR(r.state().position.y, 0.0, 0.05);
    EXPECT_NEAR(r.speed(), 0.0, 0.05);
}

TEST(Rover, SteeringClamped)
{
    RoverParams p;
    p.maxSteer = 0.3;
    AckermannRover r(p);
    r.reset({0, 0, 0}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 2.0;
    cmd.yawRate = 10.0; // absurd
    r.command(cmd);
    runVehicle(r, 2.0);
    EXPECT_LE(std::abs(r.steerAngle()), 0.3 + 1e-9);
}

TEST(Rover, CollisionScrubsSpeed)
{
    AckermannRover r;
    r.reset({5, 0, 0}, 0.0);
    flight::VelocityCommand cmd;
    cmd.forward = 8.0;
    r.command(cmd);
    runVehicle(r, 2.0);
    double before = r.speed();
    // Head-on impact: wall ahead, inward normal facing back at us.
    double impact =
        r.resolveWallCollision({5.0, 1.2, 0.8}, {-1, 0, 0});
    EXPECT_NEAR(impact, before, 0.1);
    EXPECT_LT(r.speed(), 0.3 * before);
    EXPECT_DOUBLE_EQ(r.state().position.y, 1.2);
}

TEST(Rover, SensorMastHeight)
{
    RoverParams p;
    p.sensorHeight = 0.8;
    AckermannRover r(p);
    r.reset({0, 0, 0}, 0.0);
    EXPECT_DOUBLE_EQ(r.sensorFrame().position.z, 0.8);
}

// ------------------------------------------------------- EnvSim + rover

TEST(EnvSimRover, DrivesTheTunnel)
{
    EnvConfig cfg;
    cfg.vehicleName = "rover";
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    sim.commandVelocity(4.0, 0.0, 0.0);
    sim.stepFrames(5 * 60);
    EXPECT_GT(sim.kinematics().position.x, 15.0);
    EXPECT_FALSE(sim.collisionInfo().hasCollided);
}

TEST(EnvSimRover, SteersIntoWallAndCollides)
{
    EnvConfig cfg;
    cfg.vehicleName = "rover";
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    sim.commandVelocity(4.0, 0.0, 1.0); // hard left
    sim.stepFrames(4 * 60);
    EXPECT_TRUE(sim.collisionInfo().hasCollided);
}

TEST(EnvSimRover, SensorsSampleFromMastHeight)
{
    EnvConfig cfg;
    cfg.vehicleName = "rover";
    cfg.turbulenceForceStd = 0.0;
    EnvSim sim(cfg);
    Image img = sim.getImage();
    EXPECT_EQ(img.width, cfg.camera.width);
    // IMU at rest on the ground reads +g.
    ImuSample s = sim.getImu();
    EXPECT_NEAR(s.accel.z, 9.81, 0.5);
    // Depth straight down the corridor: max range.
    EXPECT_NEAR(sim.getDepth(), cfg.depthMaxRange, 0.5);
}
